"""The ingest engine: one near-optimal storage plan, kept standing.

Per-arrival work is deliberately tiny — O(parents + tree depth) plus an
amortized O(V) array extension — because everything expensive is either
event-driven bookkeeping or deferred:

1. **Append** — the new version and its parent deltas go into the
   :class:`~repro.core.graph.VersionGraph`; the mutation-event stream
   extends the cached compiled arrays in place (no recompilation) and
   updates the problem's online budget lower bound.
2. **Repair** — the arriving version is attached to the live
   :class:`~repro.fastgraph.plantree.ArrayPlanTree` through its
   cheapest feasible edge (lexicographic ``(edge storage, resulting
   retrieval)``, parents in arrival order, materialization last), an
   O(depth) incremental attach.
3. **Re-solve** — a *staleness bound* (objective cost added by greedy
   attaches since the last full solve, relative to that solve's
   objective) accumulates; past :attr:`IngestEngine.staleness_threshold`
   the engine re-solves the whole instance with the registered solver
   kernel, either synchronously or on a background thread while ingest
   keeps serving arrivals.

Both paper problem families are served; everything per-problem —
attach feasibility, the staleness metric, objective extraction, the
``budget_factor`` lower bound, the default solver — routes through the
:class:`~repro.core.problemspec.ProblemSpec` selected by ``problem=``
(``"msr"``: the budget caps total storage, objective total retrieval;
``"bmr"``: the budget caps every version's retrieval, objective total
storage).  The engine itself contains no per-problem branches.

An attached :class:`~repro.store.MaterializationStore`
(:meth:`IngestEngine.attach_store`) is migrated to the live plan after
every commit ingest and integrated re-solve — only the tree-diff edges
are rewritten — so the standing plan is always backed by
byte-reconstructable storage.

The staleness quantity is an upper-bound *estimate* of relative
objective drift: a full re-solve can recover at most what the greedy
attaches added (it may also exploit new edges for old versions, which
the bound does not see — hence "bound against the last full solve",
not against the true optimum).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from ..algorithms.registry import get_engine_solver
from ..core.graph import GraphError, GraphMutation, Node, VersionGraph
from ..core.problemspec import get_spec
from ..core.solution import StoragePlan
from ..parallel.background import BackgroundResolver
from ..store import MaterializationStore

__all__ = ["ArrivalStats", "IngestEngine"]


@dataclass(frozen=True)
class ArrivalStats:
    """Plan statistics emitted for one ingested version."""

    index: int  # compiled node index of the arrival (== arrival order)
    version: Node
    budget: float  # budget in force (storage for MSR, retrieval for BMR)
    storage: float  # plan total storage after the arrival
    retrieval: float  # plan total retrieval after the arrival
    max_retrieval: float
    staleness: float  # staleness bound after the arrival
    resolved: bool  # True when a full re-solve landed on this arrival
    seconds: float  # wall-clock ingest cost (append + repair [+ solve])


class IngestEngine:
    """Keeps a near-optimal storage plan standing over a growing graph.

    Parameters
    ----------
    graph:
        Optional existing :class:`VersionGraph` to take ownership of
        (bootstrap re-solve happens on the first arrival); default is a
        fresh empty graph.
    problem:
        ``"msr"`` (default; the budget caps total storage) or
        ``"bmr"`` (the budget caps every version's retrieval cost) —
        any name registered in :data:`repro.core.problemspec.SPECS`.
        The resolved :class:`~repro.core.problemspec.ProblemSpec` is
        exposed as :attr:`spec` and drives repair feasibility,
        staleness accounting and budget resolution.
    solver:
        Engine-capable solver name (see
        :data:`repro.algorithms.registry.ENGINE_KERNELS`).  Defaults to
        the spec's ``default_engine_solver`` (``"lmg"`` for MSR,
        ``"mp-local"`` for BMR).
    budget:
        Fixed budget (total storage for MSR, max retrieval for BMR).
        Exactly one of ``budget`` / ``budget_factor`` must be given.
    budget_factor:
        Dynamic budget = ``budget_factor * LB`` where ``LB`` is the
        problem's online lower bound, maintained incrementally from the
        mutation-event stream (``spec.lower_bound_tracker()``):

        * **MSR** — ``LB = sum_v min_in(v) + min_v (s_v - min_in(v))``
          with ``min_in(v)`` the cheapest incoming edge storage of
          ``v`` (materialization included): a lower bound on the
          minimum-storage arborescence.  Factors well above 1 keep the
          instance comfortably feasible (the bound is not tight on
          cyclic graphs).
        * **BMR** — ``LB = max_v min{ r(e) : e a delta into v with
          s(e) < s_v }`` (0 when materializing ``v`` is already its
          cheapest storage): the smallest retrieval budget at which
          every version *could* take its cheapest-storage in-edge —
          below it at least one version is forced to pay full
          materialization storage.  Factors ≥ 1 open progressively
          deeper delta chains.

        Either bound can tighten as cheaper deltas arrive, so with
        ``budget_factor`` the standing plan is guaranteed feasible
        against the budget *at its last solve or attach*; the next
        re-solve re-establishes feasibility against the current one.
    staleness_threshold:
        Re-solve once :attr:`staleness_bound` exceeds this (default
        0.1 = re-solve when greedy attaches added 10% of the last
        solve's objective — total retrieval for MSR, total storage for
        BMR).  ``float("inf")`` disables automatic re-solves (pure
        repair mode; call :meth:`resolve` yourself).
    background:
        When True, threshold re-solves run on a
        :class:`~repro.parallel.BackgroundResolver` thread against a
        compiled-graph snapshot; arrivals during the solve are replayed
        onto the new tree at integration.  Synchronous (deterministic)
        re-solves otherwise.
    retrieval_ratio:
        Retrieval = ``ratio * storage`` for commit deltas ingested via
        :meth:`ingest_commit` (the single-weight-function regime).
    """

    def __init__(
        self,
        graph: VersionGraph | None = None,
        *,
        problem: str = "msr",
        solver: str | None = None,
        budget: float | None = None,
        budget_factor: float | None = None,
        staleness_threshold: float = 0.1,
        background: bool = False,
        retrieval_ratio: float = 1.0,
        name: str = "ingest",
    ) -> None:
        self.spec = get_spec(problem)
        self.problem = self.spec.name
        if (budget is None) == (budget_factor is None):
            raise ValueError("pass exactly one of budget / budget_factor")
        if solver is None:
            solver = self.spec.default_engine_solver
        self.graph = graph if graph is not None else VersionGraph(name=name)
        self.solver_name = solver
        self._solver = get_engine_solver(self.spec.name, solver)
        self._budget = None if budget is None else float(budget)
        self._budget_factor = None if budget_factor is None else float(budget_factor)
        self.staleness_threshold = float(staleness_threshold)
        self.retrieval_ratio = float(retrieval_ratio)

        self._tree = None  # live ArrayPlanTree (None until first solve)
        self._index: dict[Node, int] = {}
        self._nodes: list[Node] = []
        self._num_real_edges = 0
        self._lb = self.spec.lower_bound_tracker()  # online budget lower bound
        self._solve_obj = 0.0
        self._pending_obj = 0.0
        self._max_ret = 0.0
        self._resolves = 0
        self._dirty = self.graph.num_versions > 0  # bookkeeping needs rebuild
        self._bg = BackgroundResolver() if background else None
        # The engine is single-threaded by contract: only the solver
        # callable crosses to the BackgroundResolver thread, never the
        # engine itself.  The re-solve coordination state below is
        # therefore owned by the ingest thread — declared with the
        # `ingest-thread` token and checked by the lock-discipline rule
        # (every method touching these is marked `# holds: ingest-thread`).
        self._bg_gen = 0  # sync resolves obsolete bg results  # guarded-by: ingest-thread
        self._bg_sub_gen = 0  # generation of the in-flight bg solve  # guarded-by: ingest-thread
        self._log: list[tuple[int, list[tuple[int, int, float, float]]]] = []  # guarded-by: ingest-thread
        self._compact_pending = False  # dead compiled slots await compaction  # guarded-by: ingest-thread
        self._retiring = False  # inside retire_version's graph surgery  # guarded-by: ingest-thread
        self._store: MaterializationStore | None = None
        self._store_repo = None  # Repository backing snapshot fetches
        self.graph.subscribe(self._on_mutation)

    # ------------------------------------------------------------------
    # event-driven bookkeeping
    # ------------------------------------------------------------------
    def _on_mutation(self, event: GraphMutation) -> None:  # holds: ingest-thread
        if event.kind == "add_version":
            # slot = len(_nodes), not len(_index): retired versions keep
            # their (dead) slot until compaction, matching the compiled
            # graph's slot assignment exactly
            self._index[event.v] = len(self._nodes)
            self._nodes.append(event.v)
            self._lb.add_version(event.v, event.storage)
        elif event.kind == "add_delta":
            self._num_real_edges += 1
            self._lb.add_delta(
                event.v,
                event.storage,
                event.retrieval,
                self.graph.storage_cost(event.v),
            )
        elif event.kind in GraphMutation.DETACH_KINDS:
            # retirement: the lower bound undoes the detached
            # contribution incrementally and the compiled slot / edge id
            # stays allocated (dead) until the next re-solve compacts,
            # so no bookkeeping rebuild is needed.  _num_real_edges is a
            # monotone edge-id counter (mirroring the compiled graph's
            # pre-compaction `_m_real`), so removals leave it alone.
            if event.kind == "remove_delta":
                self._lb.remove_delta(
                    event.v, event.storage, event.retrieval, self.graph
                )
            else:
                self._index.pop(event.v, None)  # _nodes keeps the dead slot
                self._lb.remove_version(event.v)
            self._compact_pending = True
            if not self._retiring:
                # out-of-band removal (straight on the graph): the live
                # tree was not repaired — force a re-solve next ingest
                self._dirty = True
        else:
            # cost updates shift the compiled arrays and the lower
            # bound — rebuild from the graph before the next decision
            self._dirty = True

    def _rebuild_bookkeeping(self) -> None:  # holds: ingest-thread
        g = self.graph
        if self._compact_pending:
            # compact retired slots out of the compiled arrays first, so
            # the interning rebuilt below (live versions only) matches
            # the compiled slot space exactly
            cached = g.compiled_cache
            if cached is not None:
                cached.refresh()
            self._compact_pending = False
        self._nodes = g.versions
        self._index = {v: i for i, v in enumerate(self._nodes)}
        self._num_real_edges = g.num_deltas
        self._lb.rebuild(g)
        self._dirty = False

    # ------------------------------------------------------------------
    # budget / staleness
    # ------------------------------------------------------------------
    def current_budget(self) -> float:
        """The budget in force right now (``spec.budget_kind`` says
        whether it caps plan storage or per-version retrieval)."""
        if self._budget is not None:
            return self._budget
        if self._dirty:
            self._rebuild_bookkeeping()
        return self._budget_factor * self._lb.value()

    @property
    def staleness_bound(self) -> float:
        """Objective cost added by greedy attaches since the last full
        solve, relative to that solve's objective (total retrieval for
        MSR, total storage for BMR)."""
        return self._pending_obj / max(self._solve_obj, 1.0)

    @property
    def resolves(self) -> int:
        """Number of full re-solves performed so far."""
        return self._resolves

    @property
    def tree(self):
        """The live :class:`ArrayPlanTree` (None before the first arrival)."""
        return self._tree

    def plan(self) -> StoragePlan:
        """Export the live tree as a :class:`StoragePlan`."""
        if self._tree is None:
            raise GraphError("no plan yet: ingest at least one version")
        return self._tree.to_plan()

    # ------------------------------------------------------------------
    # attached materialization store
    # ------------------------------------------------------------------
    @property
    def store(self) -> MaterializationStore | None:
        """The attached materialization store (None when detached)."""
        return self._store

    def attach_store(
        self, store: MaterializationStore, repo=None
    ) -> None:
        """Keep ``store`` current with the live plan from now on.

        After every :meth:`ingest_commit` (and every integrated
        re-solve) the store is migrated to the live tree — new edges
        written, stale edges dropped, objects garbage-collected — so a
        background re-solve lands as a cheap storage migration instead
        of a rewrite.  Snapshot bytes for arriving versions come from
        the :class:`~repro.vcs.repo.Repository` passed to
        :meth:`ingest_commit` (or ``repo`` here); the byte-less
        :meth:`ingest_version` path cannot feed a store and raises
        :class:`~repro.store.StoreError` on sync if new versions have
        no snapshot source.  If the engine already holds a plan, the
        store is brought current immediately.
        """
        self._store = store
        if repo is not None:
            self._store_repo = repo
        if self._tree is not None:
            self._sync_store()

    def _sync_store(self) -> None:  # holds: ingest-thread
        """Migrate the attached store to the live plan tree."""
        if self._store is None or self._tree is None:
            return
        repo = self._store_repo
        fetch = None if repo is None else (lambda v: repo.commits[v].snapshot)
        self._store.sync(self._tree.to_plan(), fetch=fetch)

    # ------------------------------------------------------------------
    # ingest
    # ------------------------------------------------------------------
    def ingest_version(
        self,
        v: Node,
        storage: float,
        deltas: tuple | list = (),
    ) -> ArrivalStats:
        """Ingest one version with its incident deltas and repair the plan.

        ``deltas`` holds ``(src, dst, storage, retrieval)`` edges, each
        incident to ``v``, added in the given order (edge insertion
        order is the kernels' tie-breaking order, so a stream that
        mirrors :func:`~repro.vcs.build.build_graph_from_repo` produces
        a byte-identical compiled graph).  Incoming edges
        (``dst == v``) are the attach candidates; outgoing ones are
        kept for future re-solves — they can only help older versions.
        Raises ``ValueError`` when the budget cannot accommodate the
        new version even after a full re-solve.
        """
        t0 = time.perf_counter()
        g = self.graph
        # validate the WHOLE arrival before mutating anything: a bad
        # delta halfway through would leave graph and plan bookkeeping
        # permanently out of sync (atomic-or-raise)
        if v in g:
            raise GraphError(f"version {v!r} already ingested")
        if storage < 0:
            raise GraphError(f"storage cost must be non-negative, got {storage!r}")
        deltas = [(u, w, float(s), float(r)) for u, w, s, r in deltas]
        seen_edges = set()
        for u, w, s, r in deltas:
            if v not in (u, w):
                raise GraphError(f"delta {u!r}->{w!r} is not incident to {v!r}")
            if u == w:
                raise GraphError(f"self-delta {u!r}->{w!r} not allowed")
            other = w if u == v else u
            if other not in g:
                raise GraphError(f"unknown version {other!r}; ingest it first")
            if (u, w) in seen_edges:
                raise GraphError(f"duplicate delta {u!r}->{w!r}")
            seen_edges.add((u, w))
            if s < 0 or r < 0:
                raise GraphError(
                    f"delta costs must be non-negative, got {s!r}/{r!r}"
                )
        # out-of-band mutations (cost updates, removals) invalidate the
        # index/eid bookkeeping AND the live tree: rebuild, then re-solve
        force_resolve = self._dirty or self._tree is None
        if self._dirty:
            self._rebuild_bookkeeping()
        candidates: list[tuple[int, int, float, float]] = []
        try:
            g.add_version(v, float(storage))
            for u, w, s, r in deltas:
                g.add_delta(u, w, s, r)
                if w == v:
                    candidates.append(
                        (self._index[u], self._num_real_edges - 1, s, r)
                    )
        except Exception:
            # defense in depth: anything that still slipped through the
            # pre-validation leaves the graph half-mutated — force a
            # bookkeeping rebuild + full re-solve on the next ingest
            self._dirty = True
            self._tree = None
            raise

        resolved = False
        if force_resolve:
            self._resolve_sync()
            resolved = True
        else:
            covered = False
            if self._bg is not None:
                # a replay-infeasible integration re-solves the whole
                # graph, which already includes this arrival: attaching
                # it again would double-append
                covered = self._poll_background()
            if covered:
                resolved = True
            elif not self._attach(self._index[v], candidates):
                self._resolve_sync()  # repair infeasible under the budget
                resolved = True
            elif self.staleness_bound > self.staleness_threshold:
                resolved = self._trigger_resolve()

        tree = self._tree
        return ArrivalStats(
            index=self._index[v],
            version=v,
            budget=self.current_budget(),
            storage=tree.total_storage,
            retrieval=tree.total_retrieval,
            max_retrieval=self._max_ret,
            staleness=self.staleness_bound,
            resolved=resolved,
            seconds=time.perf_counter() - t0,
        )

    def ingest_commit(self, repo, commit) -> ArrivalStats:
        """Ingest one :class:`~repro.vcs.repo.RepoCommit` from ``repo``.

        Diffs the commit against its parents **only** (both directions
        from a single Myers trace per file —
        :func:`repro.vcs.build.snapshot_delta_bytes_pair`), matching the
        batch :func:`~repro.vcs.build.build_graph_from_repo` costs.
        """
        from ..vcs.build import snapshot_delta_bytes_pair

        ratio = self.retrieval_ratio
        c = commit.id
        deltas = []
        for p in commit.parents:
            fwd, bwd = snapshot_delta_bytes_pair(
                repo.commits[p].snapshot, commit.snapshot
            )
            # (p -> c) then (c -> p), per parent — the exact insertion
            # order of the batch builder, keeping compiled graphs (and
            # hence solver tie-breaking) byte-identical
            deltas.append((p, c, float(fwd), float(fwd) * ratio))
            deltas.append((c, p, float(bwd), float(bwd) * ratio))
        self._store_repo = repo
        stats = self.ingest_version(c, float(commit.total_bytes()), deltas)
        if self._store is not None:
            self._sync_store()
        return stats

    def ingest_repository(self, repo):
        """Stream every commit of ``repo`` in order; yields per-arrival stats."""
        for commit in repo.commits:
            yield self.ingest_commit(repo, commit)

    # ------------------------------------------------------------------
    # retirement
    # ------------------------------------------------------------------
    @staticmethod
    def _in_subtree(tree, u: int, root: int) -> bool:
        """True when slot ``u`` lies inside ``root``'s subtree.

        An O(depth) parent walk — the tree's Euler intervals may be
        stale mid-repair, so they cannot be trusted here.
        """
        aux = tree.num_versions
        x = u
        while 0 <= x != aux:
            if x == root:
                return True
            x = int(tree.parent[x])
        return False

    def retire_version(self, v: Node) -> None:  # holds: ingest-thread
        """Retire version ``v``: remove it from the graph, repair the plan.

        The graph removal is incremental — the compiled arrays tombstone
        the slot (compaction waits for the next full re-solve) and the
        budget lower bound undoes ``v``'s contribution event by event.
        Plan repair re-homes each tree child of ``v`` (subtree and all)
        through its cheapest feasible surviving edge — lexicographic
        ``(edge storage, resulting retrieval)``, parents in graph order,
        materialization last, the same rule as arrival repair — then
        detaches ``v``'s row in O(depth).  Cost: O(depth) per size walk
        plus O(|subtree|) per re-homed child; independent of graph size.

        Falls back to a synchronous full re-solve when a child cannot be
        re-homed within the budget (mirroring arrival repair), and
        raises :class:`GraphError` for unknown or still-unsolved
        versions only via the graph's own validation.  An attached store
        is migrated afterwards, garbage-collecting ``v``'s objects.
        An in-flight background solve still contains ``v``, so its
        result is obsoleted; the next threshold re-solve runs
        synchronously (it also compacts the tombstoned slots).
        """
        g = self.graph
        if v not in g:
            raise GraphError(f"unknown version {v!r}")
        tree = self._tree
        if tree is None or self._dirty:
            # no coherent live plan to repair: plain graph removal — the
            # next ingest re-solves from scratch anyway
            self._retiring = True
            try:
                g.remove_version(v)
            finally:
                self._retiring = False
            self._dirty = True
            self._tree = None
            return
        vi = self._index[v]
        aux = tree.num_versions
        cg = g.compiled_cache  # eager id lookups; compile() would compact
        assert cg is not None, "live tree without a compiled cache"
        # capture everything the repair needs before the edges vanish
        par_slot = int(tree.parent[vi])
        if par_slot == aux:
            par_edge_storage = float(g.storage_cost(v))
        else:
            par_edge_storage = float(
                g.predecessors(v)[self._nodes[par_slot]].storage
            )
        tree._ensure_children()
        child_slots = list(tree.children[vi])
        old_edge_storage = {
            ci: float(g.predecessors(self._nodes[ci])[v].storage)
            for ci in child_slots
        }
        self._retiring = True
        try:
            g.remove_version(v)
        finally:
            self._retiring = False
        self._bg_gen += 1  # an in-flight background solve still contains v
        budget = self.current_budget()
        spec = self.spec
        for ci in child_slots:
            node_c = self._nodes[ci]
            old_ret = float(tree.ret[ci])
            old_s = old_edge_storage[ci]
            # max retrieval inside the moving subtree (BMR feasibility:
            # every member shifts by the same delta)
            sub_max = old_ret
            stack = [ci]
            while stack:
                y = stack.pop()
                r = float(tree.ret[y])
                if r > sub_max:
                    sub_max = r
                stack.extend(tree.children[y])
            options = [
                (self._index[u], d.storage, d.retrieval)
                for u, d in g.predecessors(node_c).items()
            ]
            options.append((aux, float(g.storage_cost(node_c)), 0.0))
            best = None
            best_key = None
            for p_idx, s, r in options:
                if p_idx != aux and self._in_subtree(tree, p_idx, ci):
                    continue  # re-homing under a descendant = a cycle
                new_ret = 0.0 if p_idx == aux else float(tree.ret[p_idx]) + r
                feas = spec.attach_feasible(
                    tree, budget, sub_max + (new_ret - old_ret), s - old_s
                )
                if not feas:
                    continue
                key = (s, new_ret)
                if best_key is None or key < best_key:
                    best_key = key
                    best = (p_idx, s, r)
            if best is None:
                # no surviving edge fits the budget: re-solve everything
                self._resolve_sync()
                self._sync_store()
                return
            p_idx, s, r = best
            eid = cg.edge_id(p_idx, ci)  # tree aux slot == cg.aux
            sz = int(tree.size[ci])
            new_ret = 0.0 if p_idx == aux else float(tree.ret[p_idx]) + r
            new_max = tree.rehome_subtree(ci, p_idx, eid, s, r, old_s)
            drift = spec.attach_cost(s - old_s, (new_ret - old_ret) * sz)
            if drift > 0.0:
                self._pending_obj += drift
            if new_max > self._max_ret:
                self._max_ret = new_max
        tree.detach_version(vi, par_edge_storage)
        self._max_ret = tree.max_retrieval()
        if self.staleness_bound > self.staleness_threshold:
            self._trigger_resolve()  # sync: compacts the tombstones too
        self._sync_store()

    # ------------------------------------------------------------------
    # repair
    # ------------------------------------------------------------------
    def _attach(  # holds: ingest-thread
        self,
        vi: int,
        candidates: list[tuple[int, int, float, float]],
        tree=None,
        budget: float | None = None,
    ) -> bool:
        """Greedy-attach version index ``vi`` onto the live tree.

        Scans the incoming deltas in arrival order plus the
        materialization edge last, keeps the budget-feasible candidate
        minimizing ``(edge storage, resulting retrieval)`` with
        first-wins ties, and applies the O(depth) incremental attach.
        Feasibility is the spec's :meth:`~repro.core.problemspec.
        ProblemSpec.attach_feasible` rule (plan storage after the
        attach for MSR, the arrival's own resulting retrieval for BMR —
        the arrival is a leaf, so no other version's retrieval moves).
        Returns False when no candidate fits the budget (caller falls
        back to a full re-solve; for BMR materialization is always
        feasible, so this cannot happen for non-negative budgets).
        """
        tree = self._tree if tree is None else tree
        if budget is None:
            budget = self.current_budget()
        # the tree's AUX index *after* this append (background replay
        # attaches onto a tree that is still behind the graph, so the
        # graph-level AUX index would be out of range here)
        aux = tree.num_versions + 1
        node_storage = float(self.graph.storage_cost(self._nodes[vi]))
        options = list(candidates)
        options.append((aux, self._num_real_edges + vi, node_storage, 0.0))
        spec = self.spec
        best = None
        best_key = None
        for p_idx, eid, s, r in options:
            new_ret = 0.0 if p_idx == aux else float(tree.ret[p_idx]) + r
            if not spec.attach_feasible(tree, budget, new_ret, s):
                continue
            key = (s, new_ret)
            if best_key is None or key < best_key:
                best_key = key
                best = (p_idx, eid, s, r)
        if best is None:
            return False
        p_idx, eid, s, r = best
        new_v = tree.append_version(p_idx, eid, s, r)
        assert new_v == vi, "arrival order drifted from compiled interning"
        ret_v = float(tree.ret[vi])
        self._pending_obj += spec.attach_cost(s, ret_v)
        if ret_v > self._max_ret:
            self._max_ret = ret_v
        if self._bg is not None and self._bg.busy:
            self._log.append((vi, candidates))
        return True

    # ------------------------------------------------------------------
    # re-solves
    # ------------------------------------------------------------------
    def _resolve_sync(self):  # holds: ingest-thread
        if self._dirty or self._compact_pending:
            self._rebuild_bookkeeping()
        self._bg_gen += 1  # any in-flight background result is now stale
        cg = self.graph.compile()
        try:
            tree = self._solver(cg, self.current_budget())
        except ValueError:
            self._tree = None  # next ingest retries with a full solve
            raise
        self._tree = tree
        self._solve_obj = self.spec.tree_objective(tree)
        self._pending_obj = 0.0
        self._max_ret = tree.max_retrieval()
        self._resolves += 1
        self._log.clear()
        return tree

    def resolve(self):
        """Force a synchronous full re-solve; returns the fresh tree.

        The result is *identical* to a from-scratch solve on the final
        graph: the solver runs on the (refreshed) incremental compiled
        graph, which equals a fresh compile elementwise.
        """
        tree = self._resolve_sync()
        self._sync_store()
        return tree

    def _trigger_resolve(self) -> bool:  # holds: ingest-thread
        """Threshold hit: re-solve now (sync) or kick off a background one."""
        if self._bg is None or self._compact_pending:
            # retirement tombstones pending: snapshotting would compact
            # the live compiled arrays while the live tree still speaks
            # the pre-compaction slot space — resolve synchronously,
            # which rebuilds tree and bookkeeping together
            self._resolve_sync()
            return True
        if not self._bg.busy:
            snapshot = self.graph.compile().snapshot()
            budget = self.current_budget()
            self._log.clear()  # the snapshot covers every current version
            self._bg_sub_gen = self._bg_gen
            self._bg.submit(self._solver, snapshot, budget)
        return False

    def _poll_background(self) -> bool:  # holds: ingest-thread
        """Collect and integrate a finished background solve, if any.

        Returns True when integration fell back to a synchronous full
        re-solve: the fresh tree then already covers *every* graph
        version — including an arrival the caller added just before
        polling — so the caller must skip its own attach.
        """
        outcome = self._bg.poll()
        if outcome is None:
            return False
        if self._bg_sub_gen != self._bg_gen:
            # a sync resolve superseded this solve while it ran: its
            # result — and in particular its *failure* against a budget
            # that no longer applies — is obsolete either way
            return False
        ok, value = outcome
        if not ok:
            # mirror _resolve_sync's failure contract: null the tree so
            # a caller that catches the error (and the arrival already
            # appended to the graph this cycle) leaves the engine in a
            # retry-with-full-solve state, not one version out of sync
            self._tree = None
            raise value  # e.g. the budget went infeasible mid-stream
        tree = value
        solve_obj = self.spec.tree_objective(tree)
        # replay arrivals that landed while the solve was running
        pending = self._log
        self._log = []
        tree.cg = self.graph.compile()  # rebind to the live compiled graph
        self._tree, old_tree = tree, self._tree
        self._pending_obj = 0.0
        self._solve_obj = solve_obj
        self._max_ret = tree.max_retrieval()
        self._resolves += 1
        for vi, candidates in pending:
            if not self._attach(vi, candidates):
                # replay cannot fit the budget: fall back to the old tree
                # state and a synchronous solve over everything
                self._tree = old_tree
                self._resolve_sync()
                return True
        return False

    def wait(self) -> None:
        """Block until any in-flight background re-solve is integrated.

        An attached store is brought current with the integrated tree.
        """
        if self._bg is not None and self._bg.busy:
            self._bg.wait()
            self._poll_background()
            self._sync_store()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self, timeout: float | None = 10.0) -> None:
        """Shut down the background resolver; idempotent.

        Joins the resolver thread (bounded by ``timeout``) and discards
        any uncollected outcome — the live tree already covers every
        arrival, so nothing is lost.  A closed engine keeps working in
        synchronous-resolve mode; closing an engine that never had a
        background resolver is a no-op.
        """
        bg = self._bg
        if bg is None:
            return
        self._bg = None  # further resolves go synchronous
        bg.shutdown(timeout)

    def __enter__(self) -> "IngestEngine":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        """Deterministic teardown: no resolver thread outlives the block."""
        self.close()
