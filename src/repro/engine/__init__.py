"""Online ingest engine: incremental graph compilation + plan repair.

The paper solves MSR on a *fixed* version graph; real deployments
(collaborative dataset hubs, bolt-on versioning systems) receive
versions one commit at a time and must keep a near-optimal storage plan
standing while data arrives.  This package turns the batch pipeline
into a staged online one:

:class:`IngestEngine`
    ``engine.ingest_commit(repo, commit)`` diffs the arriving commit
    against its parents only (single-trace bidirectional Myers costs
    from :mod:`repro.vcs.build`), appends to the
    :class:`~repro.core.graph.VersionGraph` through the mutation-event
    API, lets the cached :class:`~repro.fastgraph.compiled.
    CompiledGraph` extend itself in place, greedily repairs the live
    :class:`~repro.fastgraph.plantree.ArrayPlanTree` by attaching the
    new version via its cheapest feasible edge, and tracks a staleness
    bound that triggers full re-solves (LMG family via the solver
    registry) — synchronously or on a background thread
    (:class:`repro.parallel.BackgroundResolver`).  Versions can also
    *leave*: :meth:`IngestEngine.retire_version` removes a version
    incrementally (compiled-graph tombstones + O(depth) plan repair
    that re-homes orphaned children) instead of invalidating the
    compiled arrays wholesale.

:class:`ShardRouter`
    Partitions the arrival stream across independent per-shard engines
    so concurrent writers ingest in parallel, journals every operation,
    and periodically stitches the shard plans into one globally
    feasible plan by re-solving the union instance — identical to what
    a single engine would produce from the same traffic
    (:mod:`repro.engine.sharded`).

The equivalence contract: after any ingest sequence followed by
:meth:`IngestEngine.resolve`, the plan is identical to a from-scratch
solve on the final graph, and the incrementally extended compiled graph
equals a fresh ``compile()`` elementwise (``tests/test_engine.py``).
Retirement keeps both halves of the contract (``tests/test_retire.py``).
"""

from .ingest import ArrivalStats, IngestEngine
from .sharded import ShardRouter, default_shard_key

__all__ = ["ArrivalStats", "IngestEngine", "ShardRouter", "default_shard_key"]
