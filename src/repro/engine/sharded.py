"""Sharded multi-writer ingest: per-shard engines + cross-shard stitch.

One :class:`~repro.engine.ingest.IngestEngine` owns one global graph,
so every writer serializes through it and every re-solve runs over the
whole instance.  :class:`ShardRouter` partitions the version stream
into ``num_shards`` independent engines — each with its own
:class:`~repro.core.graph.VersionGraph`, compiled arrays and (optional)
background resolver — so concurrent writers make progress in parallel:

* **Routing** — a version lands on ``shard_key(v) % num_shards``
  (CRC32 of the version's repr by default; pass ``shard_key`` to route
  by branch / subtree / tenant so related versions share a shard and
  their deltas stay local).
* **Local vs cross deltas** — a delta whose endpoints share a shard is
  ingested into that shard's graph and participates in its standing
  plan.  A *cross-shard* delta cannot live in either shard's graph;
  it is journaled and only the periodic stitch exploits it.
* **Journal** — every arrival / retirement is appended to a global
  ordered journal under the router lock.  The journal is the single
  source of truth for the union instance: replaying it builds the
  exact graph a single engine would have built from the same traffic.
* **Stitch** — :meth:`ShardRouter.stitch` replays the journal into a
  union :class:`VersionGraph` and runs the registered solver on it at
  the union budget, producing one *globally feasible*
  :class:`~repro.core.solution.StoragePlan` that may route through
  cross-shard deltas the per-shard plans cannot see.  Because the
  journal preserves arrival order (the kernels' tie-breaking order),
  the stitched plan is **identical** to a single-engine re-solve over
  the same traffic — pinned by tests, not just "within tolerance".
  The stitch runs from a journal snapshot without holding any shard
  lock, so writers keep ingesting while it solves; readers get the
  last stitched plan from :meth:`global_plan` (an immutable snapshot —
  reads never block writes).

Locking: the router state (journal, placement map, stitched plan) is
``# guarded-by: _lock`` and checked by the ``lock-discipline`` rule;
each shard engine is additionally serialized by its own writer lock in
``_shard_locks`` (engines are single-threaded by contract — see the
``ingest-thread`` token in :mod:`repro.engine.ingest`).  Lock order is
always router lock first, shard lock second, never both ways.
"""

from __future__ import annotations

import zlib
import threading
from typing import Callable, Iterable

from ..core.graph import GraphError, Node, VersionGraph
from ..core.problemspec import get_spec
from ..core.solution import StoragePlan
from ..algorithms.registry import get_engine_solver
from .ingest import ArrivalStats, IngestEngine

__all__ = ["ShardRouter", "default_shard_key"]


def default_shard_key(v: Node) -> int:
    """Stable content hash of a version id (CRC32 of its ``repr``)."""
    return zlib.crc32(repr(v).encode("utf-8"))


class ShardRouter:
    """Route a mixed arrival/retirement stream across shard engines.

    Parameters mirror :class:`~repro.engine.ingest.IngestEngine` (each
    shard engine is constructed with them) plus:

    num_shards:
        Number of independent shard engines (≥ 1).
    shard_key:
        ``Node -> int`` routing hash; same key ⇒ same shard.  Defaults
        to :func:`default_shard_key`.  Route by branch/tenant here to
        keep related versions (and their deltas) on one shard.
    stitch_interval:
        Run :meth:`stitch` automatically every this-many arrivals
        (``None`` disables; call :meth:`stitch` yourself).
    budget:
        A fixed budget applies to the *union* instance; each shard
        engine runs under an equal ``budget / num_shards`` slice (the
        stitch re-solve uses the full budget).  ``budget_factor`` needs
        no split — every shard scales its own online lower bound.
    """

    def __init__(
        self,
        num_shards: int = 4,
        *,
        problem: str = "msr",
        solver: str | None = None,
        budget: float | None = None,
        budget_factor: float | None = None,
        staleness_threshold: float = 0.1,
        background: bool = False,
        retrieval_ratio: float = 1.0,
        shard_key: Callable[[Node], int] | None = None,
        stitch_interval: int | None = None,
        name: str = "sharded",
    ) -> None:
        if num_shards < 1:
            raise ValueError(f"need at least one shard, got {num_shards}")
        if (budget is None) == (budget_factor is None):
            raise ValueError("pass exactly one of budget / budget_factor")
        if stitch_interval is not None and stitch_interval < 1:
            raise ValueError(f"bad stitch interval {stitch_interval!r}")
        self.spec = get_spec(problem)
        self.num_shards = int(num_shards)
        self.solver_name = (
            solver if solver is not None else self.spec.default_engine_solver
        )
        self._solver = get_engine_solver(self.spec.name, self.solver_name)
        self._budget = None if budget is None else float(budget)
        self._budget_factor = (
            None if budget_factor is None else float(budget_factor)
        )
        self._shard_key = shard_key if shard_key is not None else default_shard_key
        self.stitch_interval = stitch_interval
        self.name = name
        shard_budget = None if budget is None else float(budget) / num_shards
        self._shards = [
            IngestEngine(
                problem=problem,
                solver=self.solver_name,
                budget=shard_budget,
                budget_factor=budget_factor,
                staleness_threshold=staleness_threshold,
                background=background,
                retrieval_ratio=retrieval_ratio,
                name=f"{name}-{i}",
            )
            for i in range(num_shards)
        ]
        self._shard_locks = [threading.Lock() for _ in range(num_shards)]
        self._lock = threading.Lock()
        # the global arrival/retirement journal: ("add", v, storage,
        # deltas) / ("retire", v) in router-observed order — replaying
        # it rebuilds the union instance a single engine would hold
        self._journal: list[tuple] = []  # guarded-by: _lock
        self._where: dict[Node, int] = {}  # version -> shard id  # guarded-by: _lock
        self._stitched: StoragePlan | None = None  # guarded-by: _lock
        self._stitched_obj = float("nan")  # guarded-by: _lock
        self._since_stitch = 0  # arrivals since the last stitch  # guarded-by: _lock
        self._stitches = 0  # guarded-by: _lock

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    def shard_of(self, v: Node) -> int:
        """The shard index version ``v`` routes to."""
        return self._shard_key(v) % self.num_shards

    @property
    def shards(self) -> list[IngestEngine]:
        """The shard engines (index == shard id)."""
        return list(self._shards)

    @property
    def num_versions(self) -> int:
        """Live versions across all shards."""
        with self._lock:
            return len(self._where)

    # ------------------------------------------------------------------
    # writes
    # ------------------------------------------------------------------
    def ingest_version(
        self,
        v: Node,
        storage: float,
        deltas: Iterable[tuple[Node, Node, float, float]] = (),
    ) -> ArrivalStats:
        """Ingest one version; safe to call from concurrent writers.

        Same-shard deltas go straight into the shard engine (attach
        candidates, standing plan); cross-shard deltas are journaled
        for the next :meth:`stitch`.  Raises
        :class:`~repro.core.graph.GraphError` on duplicate versions or
        deltas referencing versions the router has never seen.
        """
        deltas = [(u, w, float(s), float(r)) for u, w, s, r in deltas]
        sid = self.shard_of(v)
        with self._lock:
            if v in self._where:
                raise GraphError(f"version {v!r} already ingested")
            for u, w, _s, _r in deltas:
                other = w if u == v else u
                if v not in (u, w):
                    raise GraphError(f"delta {u!r}->{w!r} is not incident to {v!r}")
                if other not in self._where:
                    raise GraphError(
                        f"unknown version {other!r}; ingest it first"
                    )
            local = [
                d for d in deltas if self._where.get(d[0] if d[0] != v else d[1], sid) == sid
            ]
            self._where[v] = sid
            self._journal.append(("add", v, float(storage), tuple(deltas)))
            self._since_stitch += 1
            due = (
                self.stitch_interval is not None
                and self._since_stitch >= self.stitch_interval
            )
        try:
            with self._shard_locks[sid]:
                stats = self._shards[sid].ingest_version(v, storage, local)
        except Exception:
            with self._lock:
                # roll the journal entry back so the stitch never sees
                # a version its shard rejected
                self._where.pop(v, None)
                for i in range(len(self._journal) - 1, -1, -1):
                    if self._journal[i][1] == v:
                        del self._journal[i]
                        break
            raise
        if due:
            self.stitch()
        return stats

    def retire_version(self, v: Node) -> None:
        """Retire ``v`` from its shard; safe under concurrent writers.

        The shard engine repairs its plan incrementally
        (:meth:`IngestEngine.retire_version`); journaled cross-shard
        deltas touching ``v`` die with it at the next stitch replay.
        """
        with self._lock:
            sid = self._where.pop(v, None)
            if sid is None:
                raise GraphError(f"unknown version {v!r}")
            self._journal.append(("retire", v))
        with self._shard_locks[sid]:
            self._shards[sid].retire_version(v)

    # ------------------------------------------------------------------
    # cross-shard stitch
    # ------------------------------------------------------------------
    def union_graph(self) -> VersionGraph:
        """Replay the journal into the union :class:`VersionGraph`.

        The graph a *single* engine would hold after the same traffic:
        every live version, every delta (cross-shard ones included),
        in journal order — so compiled interning and solver
        tie-breaking match a single-engine run exactly.
        """
        with self._lock:
            journal = list(self._journal)
        g = VersionGraph(name=f"{self.name}-union")
        for entry in journal:
            if entry[0] == "add":
                _, v, storage, deltas = entry
                g.add_version(v, storage)
                for u, w, s, r in deltas:
                    g.add_delta(u, w, s, r)
            else:
                g.remove_version(entry[1])
        return g

    def stitch(self) -> StoragePlan:
        """Cross-shard re-solve: one globally feasible plan.

        Replays the journal into the union graph and solves it with the
        registered kernel at the union budget.  Runs without shard
        locks — writers keep ingesting; arrivals that land mid-stitch
        appear in the *next* stitch.  The result (and its objective)
        replaces the :meth:`global_plan` snapshot atomically.
        """
        g = self.union_graph()
        cg = g.compile()
        if self._budget is not None:
            budget = self._budget
        else:
            lb = self.spec.lower_bound_tracker()
            lb.rebuild(g)
            budget = self._budget_factor * lb.value()
        tree = self._solver(cg, budget)
        plan = tree.to_plan()
        obj = self.spec.tree_objective(tree)
        with self._lock:
            self._stitched = plan
            self._stitched_obj = obj
            self._since_stitch = 0
            self._stitches += 1
        return plan

    def global_plan(self) -> StoragePlan | None:
        """The last stitched plan (immutable snapshot; never blocks
        writers), or ``None`` before the first stitch."""
        with self._lock:
            return self._stitched

    @property
    def stitched_objective(self) -> float:
        """Objective of the last stitched plan (NaN before the first)."""
        with self._lock:
            return self._stitched_obj

    @property
    def stitches(self) -> int:
        """Number of cross-shard stitches performed so far."""
        with self._lock:
            return self._stitches

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self, timeout: float | None = 10.0) -> None:
        """Shut down every shard's background resolver; idempotent."""
        for i, shard in enumerate(self._shards):
            with self._shard_locks[i]:
                shard.close(timeout)

    def __enter__(self) -> "ShardRouter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        """Deterministic teardown: no resolver thread outlives the block."""
        self.close()
