"""Scatter/gather budget sweeps.

A Figure-10-style experiment evaluates one solver at many budgets on a
fixed graph — an embarrassingly parallel workload.  The graph is
shipped to workers **once** through a fork-time initializer (copy-on-
write, no per-task pickling); each task is just ``(solver, budget)``.

The graph is **compiled once** (``graph.compile()``) before the pool
starts: the flat-array greedy kernels then reuse the cached
:class:`~repro.fastgraph.CompiledGraph` for every budget probe instead
of re-extending and re-indexing the graph per call, and the compiled
arrays ride along to the workers through the same fork/initializer
path.

Measured wall-clock times per probe are collected alongside objective
values so the harness can reproduce the paper's run-time panels.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from ..core.graph import VersionGraph
from ..core.problems import PlanScore, evaluate_plan
from ..algorithms.registry import BMR_SOLVERS, MSR_SOLVERS
from .pool import parallel_map

__all__ = ["SweepPoint", "sweep_msr", "sweep_bmr"]

# worker-global state, set by the fork-time initializer
_WORKER_GRAPH: VersionGraph | None = None


def _init_worker(graph: VersionGraph) -> None:
    global _WORKER_GRAPH
    _WORKER_GRAPH = graph
    # Warm the compiled-graph cache once per worker; forked workers
    # inherit the parent's cache and this is a no-op.
    graph.compile()


@dataclass(frozen=True)
class SweepPoint:
    """One (solver, budget) measurement."""

    solver: str
    budget: float
    score: PlanScore | None  # None when the budget is infeasible
    seconds: float

    @property
    def feasible(self) -> bool:
        return self.score is not None


def _run_msr_task(task: tuple[str, float]) -> SweepPoint:
    name, budget = task
    graph = _WORKER_GRAPH
    assert graph is not None, "worker initializer did not run"
    t0 = time.perf_counter()
    plan = MSR_SOLVERS[name](graph, budget)
    dt = time.perf_counter() - t0
    score = None if plan is None else evaluate_plan(graph, plan)
    return SweepPoint(solver=name, budget=budget, score=score, seconds=dt)


def _run_bmr_task(task: tuple[str, float]) -> SweepPoint:
    name, budget = task
    graph = _WORKER_GRAPH
    assert graph is not None, "worker initializer did not run"
    t0 = time.perf_counter()
    plan = BMR_SOLVERS[name](graph, budget)
    dt = time.perf_counter() - t0
    score = None if plan is None else evaluate_plan(graph, plan)
    return SweepPoint(solver=name, budget=budget, score=score, seconds=dt)


def sweep_msr(
    graph: VersionGraph,
    solvers: list[str],
    budgets: list[float],
    *,
    processes: int | None = None,
) -> list[SweepPoint]:
    """Evaluate each MSR solver at each storage budget (order preserved)."""
    graph.compile()  # one compiled graph shared by all budget probes
    tasks = [(s, float(b)) for s in solvers for b in budgets]
    return parallel_map(
        _run_msr_task, tasks, processes=processes, initializer=_init_worker, initargs=(graph,)
    )


def sweep_bmr(
    graph: VersionGraph,
    solvers: list[str],
    budgets: list[float],
    *,
    processes: int | None = None,
) -> list[SweepPoint]:
    """Evaluate each BMR solver at each retrieval budget."""
    graph.compile()  # one compiled graph shared by all budget probes
    tasks = [(s, float(b)) for s in solvers for b in budgets]
    return parallel_map(
        _run_bmr_task, tasks, processes=processes, initializer=_init_worker, initargs=(graph,)
    )
