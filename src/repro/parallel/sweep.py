"""Scatter/gather budget sweeps.

A Figure-10-style experiment evaluates solvers at many budgets on a
fixed graph.  The parallel axis is **solvers/graph-tasks, not budget
probes**: the LMG family (MSR) and ``bmr-lmg`` (BMR) produce their
entire budget series from one recorded greedy run (trajectory replay,
:func:`repro.fastgraph.sweep_greedy_msr` /
:func:`~repro.fastgraph.sweep_greedy_bmr`), so splitting their grids
into per-budget tasks would re-pay the solve ``B`` times and erase the
single-pass win.  Each sweep-capable solver therefore becomes ONE task
covering the whole grid, while solvers without a replayable trajectory
(DP, ILP, MP and ``mp-local`` — MP's Prim growth is budget-dependent
at every relaxation, so its runs share no prefix) still fan out one
task per budget.

Shared read-only state is shipped to workers **once** through the
initializer (copy-on-write under fork, pickled once under spawn):

* the graph, with its **compiled** :class:`~repro.fastgraph.
  CompiledGraph` cache warmed (``graph.compile()``) so the flat-array
  kernels never re-extend or re-index per probe;
* the **minimum-storage start tree** (Edmonds ``(version, parent-edge)``
  pairs), computed once in the parent: every greedy sweep task replays
  from it instead of re-deriving the identical arborescence.

Trajectory-replay contract: each grid point's plan is identical to an
independent per-budget solve — while the recorded move stays feasible
under a tighter budget it is also the tighter run's first-maximum
choice, and past the first infeasible recorded move the sweep resumes
the live kernel on a cloned tree (see
:mod:`repro.fastgraph.trajectory`).

Measured wall-clock times per probe are collected alongside objective
values so the harness can reproduce the paper's run-time panels; a
whole-grid sweep task records its one shared run time flat across its
grid points, like the paper's DP panels.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from ..core.graph import VersionGraph
from ..core.problems import PlanScore, evaluate_plan
from ..algorithms.registry import (
    BMR_SOLVERS,
    MSR_SOLVERS,
    get_bmr_sweep,
    get_msr_sweep,
    msr_sweep_start_edges,
)
from .pool import parallel_map

__all__ = ["SweepPoint", "sweep_msr", "sweep_bmr"]

# worker-global state, set by the initializer (fork or spawn)
_WORKER_GRAPH: VersionGraph | None = None
_WORKER_START: list[tuple[int, int]] | None = None


def _init_worker(
    graph: VersionGraph, start_edges: list[tuple[int, int]] | None = None
) -> None:
    global _WORKER_GRAPH, _WORKER_START
    _WORKER_GRAPH = graph
    _WORKER_START = start_edges
    # Warm the compiled-graph cache once per worker; forked workers
    # inherit the parent's cache (and spawned workers the pickled one),
    # making this a no-op.
    graph.compile()


@dataclass(frozen=True)
class SweepPoint:
    """One (solver, budget) measurement."""

    solver: str
    budget: float
    score: PlanScore | None  # None when the budget is infeasible
    seconds: float

    @property
    def feasible(self) -> bool:
        """True when the budget admitted a plan."""
        return self.score is not None


def _run_msr_task(task: tuple[str, list[float]]) -> list[SweepPoint]:
    """One MSR task: a solver plus the grid slice it covers."""
    name, budgets = task
    graph = _WORKER_GRAPH
    assert graph is not None, "worker initializer did not run"
    sweep = get_msr_sweep(name)
    if sweep is not None:
        t0 = time.perf_counter()
        entries = sweep(graph, budgets, start_edges=_WORKER_START)
        dt = time.perf_counter() - t0
        return [
            SweepPoint(solver=name, budget=e.budget, score=e.score, seconds=dt)
            for e in entries
        ]
    out = []
    for budget in budgets:
        t0 = time.perf_counter()
        plan = MSR_SOLVERS[name](graph, budget)
        dt = time.perf_counter() - t0
        score = None if plan is None else evaluate_plan(graph, plan)
        out.append(SweepPoint(solver=name, budget=budget, score=score, seconds=dt))
    return out


def _run_bmr_task(task: tuple[str, list[float]]) -> list[SweepPoint]:
    """One BMR task: a solver plus the grid slice it covers."""
    name, budgets = task
    graph = _WORKER_GRAPH
    assert graph is not None, "worker initializer did not run"
    sweep = get_bmr_sweep(name)
    if sweep is not None:
        t0 = time.perf_counter()
        entries = sweep(graph, budgets)
        dt = time.perf_counter() - t0
        return [
            SweepPoint(solver=name, budget=e.budget, score=e.score, seconds=dt)
            for e in entries
        ]
    out = []
    for budget in budgets:
        t0 = time.perf_counter()
        plan = BMR_SOLVERS[name](graph, budget)
        dt = time.perf_counter() - t0
        score = None if plan is None else evaluate_plan(graph, plan)
        out.append(SweepPoint(solver=name, budget=budget, score=score, seconds=dt))
    return out


def sweep_msr(
    graph: VersionGraph,
    solvers: list[str],
    budgets: list[float],
    *,
    processes: int | None = None,
) -> list[SweepPoint]:
    """Evaluate each MSR solver at each storage budget (order preserved).

    Sweep-capable solvers (the LMG family) cover their whole grid in a
    single trajectory-replay task; the rest fan out per budget.
    """
    graph.compile()  # one compiled graph shared by all tasks
    start_edges = msr_sweep_start_edges(graph, solvers)
    grid = [float(b) for b in budgets]
    tasks: list[tuple[str, list[float]]] = []
    for name in solvers:
        if get_msr_sweep(name) is not None:
            tasks.append((name, grid))
        else:
            tasks.extend((name, [b]) for b in grid)
    chunks = parallel_map(
        _run_msr_task,
        tasks,
        processes=processes,
        # whole-grid tasks are few but heavy: let 2 tasks use 2 workers
        # instead of tripping the small-input serial fallback
        min_items_per_worker=1,
        initializer=_init_worker,
        initargs=(graph, start_edges),
    )
    return [pt for chunk in chunks for pt in chunk]


def sweep_bmr(
    graph: VersionGraph,
    solvers: list[str],
    budgets: list[float],
    *,
    processes: int | None = None,
) -> list[SweepPoint]:
    """Evaluate each BMR solver at each retrieval budget.

    ``bmr-lmg`` covers its whole grid in a single trajectory-replay
    task; solvers without a replayable trajectory (MP family, DP, ILP —
    see the module docstring) fan out one task per budget, all sharing
    the one compiled graph.
    """
    graph.compile()  # one compiled graph shared by all budget probes
    grid = [float(b) for b in budgets]
    tasks: list[tuple[str, list[float]]] = []
    for name in solvers:
        if get_bmr_sweep(name) is not None:
            tasks.append((name, grid))
        else:
            tasks.extend((name, [b]) for b in grid)
    chunks = parallel_map(
        _run_bmr_task,
        tasks,
        processes=processes,
        min_items_per_worker=1,
        initializer=_init_worker,
        initargs=(graph,),
    )
    return [pt for chunk in chunks for pt in chunk]
