"""Scatter/gather budget sweeps.

A Figure-10/13-style experiment evaluates solvers at many budgets on a
fixed graph.  The parallel axis is **solvers/graph-tasks, not budget
probes**: solvers with a trajectory-replay sweep registered in
:data:`repro.algorithms.registry.SWEEPS` (the LMG family for MSR,
``bmr-lmg`` for BMR) produce their entire budget series from one
recorded greedy run (:func:`repro.fastgraph.sweep_greedy`), so
splitting their grids into per-budget tasks would re-pay the solve
``B`` times and erase the single-pass win.  Each sweep-capable solver
therefore becomes ONE task covering the whole grid, while solvers
without a replayable trajectory (DP, ILP, MP and ``mp-local`` — MP's
Prim growth is budget-dependent at every relaxation, so its runs share
no prefix) still fan out one task per budget.

One entry point, :func:`sweep`, serves every problem family registered
in :data:`repro.core.problemspec.SPECS`; :func:`sweep_msr` /
:func:`sweep_bmr` are thin wrappers.  Tasks carry the problem name, so
workers resolve solvers through the unified registry.

Shared read-only state is shipped to workers **once** through the
initializer (copy-on-write under fork, pickled once under spawn):

* the graph, with its **compiled** :class:`~repro.fastgraph.
  CompiledGraph` cache warmed (``graph.compile()``) so the flat-array
  kernels never re-extend or re-index per probe;
* the family's shared sweep start state when it has one
  (:func:`~repro.algorithms.registry.sweep_start_edges` — the
  minimum-storage Edmonds arborescence for MSR; ``None`` for families
  with budget-independent starts like BMR's all-materialized tree).

Trajectory-replay contract: each grid point's plan is identical to an
independent per-budget solve — while the recorded move stays feasible
under a tighter budget it is also the tighter run's first-maximum
choice, and past the first infeasible recorded move the sweep resumes
the live kernel on a cloned tree, sharing recorded continuations
across same-band budgets (see :mod:`repro.fastgraph.trajectory`).

Measured wall-clock times per probe are collected alongside objective
values so the harness can reproduce the paper's run-time panels; a
whole-grid sweep task records its one shared run time flat across its
grid points, like the paper's DP panels.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from ..core.graph import VersionGraph
from ..core.problems import PlanScore, evaluate_plan
from ..core.problemspec import get_spec
from ..algorithms.registry import get_solver, get_sweep, sweep_start_edges
from .pool import parallel_map

__all__ = ["SweepPoint", "sweep", "sweep_msr", "sweep_bmr"]

# worker-global state, set by the initializer (fork or spawn)
_WORKER_GRAPH: VersionGraph | None = None
_WORKER_START: list[tuple[int, int]] | None = None


def _init_worker(
    graph: VersionGraph, start_edges: list[tuple[int, int]] | None = None
) -> None:
    global _WORKER_GRAPH, _WORKER_START
    _WORKER_GRAPH = graph
    _WORKER_START = start_edges
    # Warm the compiled-graph cache once per worker; forked workers
    # inherit the parent's cache (and spawned workers the pickled one),
    # making this a no-op.
    graph.compile()


@dataclass(frozen=True)
class SweepPoint:
    """One (solver, budget) measurement."""

    solver: str
    budget: float
    score: PlanScore | None  # None when the budget is infeasible
    seconds: float

    @property
    def feasible(self) -> bool:
        """True when the budget admitted a plan."""
        return self.score is not None


def _run_task(task: tuple[str, str, list[float]]) -> list[SweepPoint]:
    """One task: a (problem, solver) pair plus the grid slice it covers."""
    problem, name, budgets = task
    graph = _WORKER_GRAPH
    assert graph is not None, "worker initializer did not run"
    grid_sweep = get_sweep(problem, name)
    if grid_sweep is not None:
        t0 = time.perf_counter()
        entries = grid_sweep(graph, budgets, start_edges=_WORKER_START)
        dt = time.perf_counter() - t0
        return [
            SweepPoint(solver=name, budget=e.budget, score=e.score, seconds=dt)
            for e in entries
        ]
    solve = get_solver(problem, name)
    out = []
    for budget in budgets:
        t0 = time.perf_counter()
        plan = solve(graph, budget)
        dt = time.perf_counter() - t0
        score = None if plan is None else evaluate_plan(graph, plan)
        out.append(SweepPoint(solver=name, budget=budget, score=score, seconds=dt))
    return out


def sweep(
    graph: VersionGraph,
    problem: str,
    solvers: list[str],
    budgets: list[float],
    *,
    processes: int | None = None,
) -> list[SweepPoint]:
    """Evaluate each solver at each budget of ``problem`` (order kept).

    Sweep-capable solvers cover their whole grid in a single
    trajectory-replay task; the rest fan out per budget, all sharing
    one compiled graph (and, for families that use one, a shared sweep
    start tree).
    """
    spec = get_spec(problem)
    graph.compile()  # one compiled graph shared by all tasks
    start_edges = sweep_start_edges(spec.name, graph, solvers)
    grid = [float(b) for b in budgets]
    tasks: list[tuple[str, str, list[float]]] = []
    for name in solvers:
        if get_sweep(spec.name, name) is not None:
            tasks.append((spec.name, name, grid))
        else:
            tasks.extend((spec.name, name, [b]) for b in grid)
    chunks = parallel_map(
        _run_task,
        tasks,
        processes=processes,
        # whole-grid tasks are few but heavy: let 2 tasks use 2 workers
        # instead of tripping the small-input serial fallback
        min_items_per_worker=1,
        initializer=_init_worker,
        initargs=(graph, start_edges),
    )
    return [pt for chunk in chunks for pt in chunk]


def sweep_msr(
    graph: VersionGraph,
    solvers: list[str],
    budgets: list[float],
    *,
    processes: int | None = None,
) -> list[SweepPoint]:
    """Storage-budget sweep: :func:`sweep` with ``problem="msr"``."""
    return sweep(graph, "msr", solvers, budgets, processes=processes)


def sweep_bmr(
    graph: VersionGraph,
    solvers: list[str],
    budgets: list[float],
    *,
    processes: int | None = None,
) -> list[SweepPoint]:
    """Retrieval-budget sweep: :func:`sweep` with ``problem="bmr"``."""
    return sweep(graph, "bmr", solvers, budgets, processes=processes)
