"""Single-slot background task runner (re-solves off the ingest path).

The online ingest engine must answer every arrival in microseconds, but
its periodic full re-solves cost a whole greedy run.  This module moves
that work off the ingest path: a :class:`BackgroundResolver` runs one
task at a time on a daemon thread, the caller polls for the result on
its own schedule and keeps serving arrivals meanwhile.

A *thread*, not a process pool, is deliberate here: the array kernels
spend their time in NumPy (which releases the GIL for the heavy array
passes), the solved tree comes back without pickling, and the solve
runs against a zero-copy :meth:`~repro.fastgraph.compiled.
CompiledGraph.snapshot` instead of shipping the whole graph to a
worker.  Scatter/gather across *independent* tasks (budget sweeps,
dataset builds) stays with :func:`repro.parallel.pool.parallel_map`.

The slot state (``_thread``, ``_outcome``) is shared between the
submitting thread and the worker, so both fields are declared
``# guarded-by: _lock`` and every access is checked by the
``lock-discipline`` rule of :mod:`repro.analysis`.
"""

from __future__ import annotations

import threading
from typing import Any, Callable

__all__ = ["BackgroundResolver"]


class BackgroundResolver:
    """Run one function at a time on a background daemon thread.

    Usage::

        bg = BackgroundResolver()
        bg.submit(solver, snapshot, budget)
        ...                      # keep ingesting
        outcome = bg.poll()      # None while running
        if outcome is not None:
            ok, value = outcome  # value is the result or the exception

    Exceptions raised by the task are captured and returned through
    :meth:`poll` as ``(False, exception)`` — the ingest loop decides
    whether to re-raise (infeasible budgets) or retry later.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._thread: threading.Thread | None = None  # guarded-by: _lock
        self._outcome: tuple[bool, Any] | None = None  # guarded-by: _lock

    @property
    def busy(self) -> bool:
        """True while a submitted task has not been collected yet."""
        with self._lock:
            return self._thread is not None

    def submit(self, fn: Callable[..., Any], *args: Any) -> None:
        """Start ``fn(*args)`` in the background; one task at a time."""

        def run() -> None:
            try:
                result = fn(*args)
            except Exception as err:  # noqa: BLE001 - handed back via poll()
                outcome = (False, err)
            else:
                outcome = (True, result)
            # publishing the outcome is the worker's last act; the
            # slot stays occupied (_thread set) until poll() collects
            with self._lock:
                self._outcome = outcome

        thread = threading.Thread(target=run, name="repro-bg-resolve", daemon=True)
        with self._lock:
            if self._thread is not None:
                raise RuntimeError("a background task is already in flight")
            self._outcome = None
            self._thread = thread
        # start outside the lock: the worker may run (and try to take
        # the lock to publish) before start() returns
        thread.start()

    def poll(self) -> tuple[bool, Any] | None:
        """``(ok, result_or_exception)`` once finished, else ``None``."""
        with self._lock:
            t = self._thread
        if t is None or t.is_alive():
            return None
        t.join()
        with self._lock:
            self._thread = None
            outcome = self._outcome
            self._outcome = None
        return outcome

    def wait(self, timeout: float | None = None) -> None:
        """Block until the in-flight task finishes.

        Does **not** collect the outcome — call :meth:`poll` afterwards,
        so callers with their own integration path (the ingest engine)
        can route the result through it.
        """
        with self._lock:
            t = self._thread
        if t is not None:
            t.join(timeout)

    def shutdown(self, timeout: float | None = None) -> bool:
        """Join and discard any in-flight task; idempotent.

        Returns True when the slot is free afterwards (no task was
        running, or it finished within ``timeout``).  A False return
        means the worker is still running past the timeout — it is a
        daemon thread, so process exit will not hang on it, but the
        resolver must not accept new work (``submit`` still sees the
        slot occupied).  Callers that want the result should use
        :meth:`wait` + :meth:`poll` instead; shutdown is for teardown
        paths where the outcome no longer matters.
        """
        with self._lock:
            t = self._thread
        if t is None:
            return True
        t.join(timeout)
        if t.is_alive():
            return False
        with self._lock:
            self._thread = None
            self._outcome = None
        return True
