"""Single-slot background task runner (re-solves off the ingest path).

The online ingest engine must answer every arrival in microseconds, but
its periodic full re-solves cost a whole greedy run.  This module moves
that work off the ingest path: a :class:`BackgroundResolver` runs one
task at a time on a daemon thread, the caller polls for the result on
its own schedule and keeps serving arrivals meanwhile.

A *thread*, not a process pool, is deliberate here: the array kernels
spend their time in NumPy (which releases the GIL for the heavy array
passes), the solved tree comes back without pickling, and the solve
runs against a zero-copy :meth:`~repro.fastgraph.compiled.
CompiledGraph.snapshot` instead of shipping the whole graph to a
worker.  Scatter/gather across *independent* tasks (budget sweeps,
dataset builds) stays with :func:`repro.parallel.pool.parallel_map`.
"""

from __future__ import annotations

import threading
from typing import Any, Callable

__all__ = ["BackgroundResolver"]


class BackgroundResolver:
    """Run one function at a time on a background daemon thread.

    Usage::

        bg = BackgroundResolver()
        bg.submit(solver, snapshot, budget)
        ...                      # keep ingesting
        outcome = bg.poll()      # None while running
        if outcome is not None:
            ok, value = outcome  # value is the result or the exception

    Exceptions raised by the task are captured and returned through
    :meth:`poll` as ``(False, exception)`` — the ingest loop decides
    whether to re-raise (infeasible budgets) or retry later.
    """

    def __init__(self) -> None:
        self._thread: threading.Thread | None = None
        self._outcome: tuple[bool, Any] | None = None

    @property
    def busy(self) -> bool:
        """True while a submitted task has not been collected yet."""
        return self._thread is not None

    def submit(self, fn: Callable[..., Any], *args: Any) -> None:
        """Start ``fn(*args)`` in the background; one task at a time."""
        if self._thread is not None:
            raise RuntimeError("a background task is already in flight")
        self._outcome = None

        def run() -> None:
            try:
                result = fn(*args)
            except Exception as err:  # noqa: BLE001 - handed back via poll()
                self._outcome = (False, err)
            else:
                self._outcome = (True, result)

        self._thread = threading.Thread(
            target=run, name="repro-bg-resolve", daemon=True
        )
        self._thread.start()

    def poll(self) -> tuple[bool, Any] | None:
        """``(ok, result_or_exception)`` once finished, else ``None``."""
        t = self._thread
        if t is None:
            return None
        if t.is_alive():
            return None
        t.join()
        self._thread = None
        outcome = self._outcome
        self._outcome = None
        return outcome

    def wait(self, timeout: float | None = None) -> None:
        """Block until the in-flight task finishes.

        Does **not** collect the outcome — call :meth:`poll` afterwards,
        so callers with their own integration path (the ingest engine)
        can route the result through it.
        """
        t = self._thread
        if t is not None:
            t.join(timeout)
