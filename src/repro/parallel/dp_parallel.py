"""Parallel tree DP: independent subtrees solved in worker processes.

The DP-MSR recurrence only couples a node to its children, so the
subtrees hanging off the root are independent subproblems — the classic
tree-parallel decomposition (and the practical face of the "lock-free
parallel dynamic programming" the paper cites).  The solver object is
built *before* forking so workers inherit the tree index copy-on-write;
each worker returns its subtree's DP table (a dict of NumPy-backed
frontiers, cheap to pickle), and the parent folds them at the root.

Speedups are bounded by the heaviest subtree (natural version graphs
are path-like, so don't expect miracles there — star-like histories
parallelize well); the point is bit-identical results, which the tests
assert against the serial solver.
"""

from __future__ import annotations

import multiprocessing as mp

from ..core.graph import Node, VersionGraph
from ..algorithms.dp_msr import DPMSRSolver
from ..algorithms.frontier import Frontier, merge_frontiers
from .pool import default_workers

__all__ = ["dp_msr_frontier_parallel"]

_WORKER_SOLVER: DPMSRSolver | None = None


def _init_worker(solver: DPMSRSolver) -> None:
    global _WORKER_SOLVER
    _WORKER_SOLVER = solver


def _solve_subtree(w: Node) -> tuple[Node, dict[Node, "Frontier"]]:
    """Run the DP bottom-up over T[w] only; return its root table."""
    solver = _WORKER_SOLVER
    assert solver is not None
    index = solver.index
    sub = set(index.subtree_nodes(w))
    tables: dict[Node, dict[Node, Frontier]] = {}
    for v in index.post_order:
        if v not in sub:
            continue
        rows = {u: solver._init_row(v, u) for u in index.nodes}
        for c in index.children[v]:
            dw = tables.pop(c)
            inside = set(index.subtree_nodes(c))
            best_c = merge_frontiers((dw[x] for x in inside), solver.grid)
            for u in index.nodes:
                contrib = dw[u] if u in inside else dw[u].union(best_c, solver.grid)
                rows[u] = rows[u].combine(contrib, solver.grid)
        tables[v] = rows
    return w, tables[w]


def dp_msr_frontier_parallel(
    graph: VersionGraph,
    *,
    ticks: int | None = 64,
    storage_cap: float | None = None,
    processes: int | None = None,
) -> Frontier:
    """Parallel variant of :func:`repro.algorithms.dp_msr_frontier`.

    Results are identical to the serial DP (same fold order per node);
    only the schedule differs.
    """
    solver = DPMSRSolver(graph, ticks=ticks, storage_cap=storage_cap)
    index = solver.index
    root = index.root
    top = list(index.children[root])
    procs = default_workers() if processes is None else max(1, processes)

    if procs == 1 or len(top) < 2:
        return solver.frontier()

    try:
        ctx = mp.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX
        return solver.frontier()

    with ctx.Pool(
        processes=min(procs, len(top)), initializer=_init_worker, initargs=(solver,)
    ) as pool:
        child_tables = dict(pool.map(_solve_subtree, top))

    # fold the root exactly as the serial DP would
    rows = {u: solver._init_row(root, u) for u in index.nodes}
    for w in top:
        dw = child_tables[w]
        inside = set(index.subtree_nodes(w))
        best_w = merge_frontiers((dw[x] for x in inside), solver.grid)
        for u in index.nodes:
            contrib = dw[u] if u in inside else dw[u].union(best_w, solver.grid)
            rows[u] = rows[u].combine(contrib, solver.grid)
    return merge_frontiers(rows.values(), solver.grid)
