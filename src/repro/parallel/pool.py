"""Deterministic process-pool map.

The paper closes Section 6 noting that DP heuristics admit lock-free
parallelization [Stivala et al. 2010]; the hpc-parallel guides push the
scatter/gather idiom.  In pure Python the profitable granularity is the
*task* level — independent budget probes, independent dataset builds,
independent subtree solves — so this module provides exactly that: an
order-preserving ``parallel_map`` over picklable tasks with a serial
fallback (used automatically when the pool would not pay off or when
the platform lacks ``fork``).
"""

from __future__ import annotations

import multiprocessing as mp
import os
from typing import Callable, Sequence, TypeVar

T = TypeVar("T")
R = TypeVar("R")

__all__ = ["parallel_map", "default_workers"]


def default_workers() -> int:
    """A conservative worker count (never more than 8, at least 1)."""
    return max(1, min(8, (os.cpu_count() or 2) - 1))


def parallel_map(
    fn: Callable[[T], R],
    items: Sequence[T],
    *,
    processes: int | None = None,
    min_items_per_worker: int = 2,
    chunksize: int | None = None,
    initializer: Callable[..., None] | None = None,
    initargs: tuple = (),
) -> list[R]:
    """Map ``fn`` over ``items`` preserving order.

    Falls back to a serial loop when ``processes`` resolves to 1, when
    there are too few items to amortize process startup, or when the
    ``fork`` start method is unavailable.  ``fn`` must be defined at
    module top level (pickled by reference).
    """
    items = list(items)
    n = len(items)
    procs = default_workers() if processes is None else max(1, processes)
    if procs == 1 or n < min_items_per_worker * 2:
        if initializer is not None:
            initializer(*initargs)
        return [fn(x) for x in items]
    try:
        ctx = mp.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        if initializer is not None:
            initializer(*initargs)
        return [fn(x) for x in items]
    procs = min(procs, max(1, n // min_items_per_worker))
    if chunksize is None:
        chunksize = max(1, n // (procs * 4))
    with ctx.Pool(processes=procs, initializer=initializer, initargs=initargs) as pool:
        return pool.map(fn, items, chunksize=chunksize)
