"""Process-based scatter/gather substrate for sweeps and tree DPs."""

from .dp_parallel import dp_msr_frontier_parallel
from .pool import default_workers, parallel_map
from .sweep import SweepPoint, sweep_bmr, sweep_msr

__all__ = [
    "parallel_map",
    "default_workers",
    "SweepPoint",
    "sweep_msr",
    "sweep_bmr",
    "dp_msr_frontier_parallel",
]
