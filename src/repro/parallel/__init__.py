"""Process-based scatter/gather substrate for sweeps and tree DPs,
plus the single-slot background runner the ingest engine re-solves on."""

from .background import BackgroundResolver
from .dp_parallel import dp_msr_frontier_parallel
from .pool import default_workers, parallel_map
from .sweep import SweepPoint, sweep, sweep_bmr, sweep_msr

__all__ = [
    "parallel_map",
    "default_workers",
    "BackgroundResolver",
    "SweepPoint",
    "sweep",
    "sweep_msr",
    "sweep_bmr",
    "dp_msr_frontier_parallel",
]
