"""Shared fixtures for the benchmark suite.

Datasets and one-shot experiment results are cached per session so each
figure's data is computed once and shared between the pytest-benchmark
timing functions and the shape-assertion report tests.
"""

from __future__ import annotations

import pytest

from repro.bench import build


@pytest.fixture(scope="session")
def dataset_cache():
    cache: dict[tuple[str, bool], object] = {}

    def get(name: str, compressed: bool = False):
        key = (name, compressed)
        if key not in cache:
            cache[key] = build(name, compressed=compressed)
        return cache[key]

    return get


@pytest.fixture(scope="session")
def result_store():
    """Cross-test scratch space for experiment results."""
    return {}
