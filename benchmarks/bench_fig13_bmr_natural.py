"""Figure 13 — BMR on natural version graphs: MP vs DP-BMR (+ run time).

Paper shape: DP-BMR's storage is at most MP's on most of the retrieval-
budget range, the gap widening as the budget grows; DP-BMR's objective
decreases *monotonically* in the budget (it is optimal on the extracted
tree) whereas MP's need not; at R = 0 both materialize everything and
DP-BMR can be marginally worse (it only sees the extracted tree).
"""

import math

import pytest

from repro.bench import ascii_plot, run_bmr_experiment
from repro.algorithms import dp_bmr_heuristic, extract_index, mp

DATASETS = ["styleguide", "freeCodeCamp"]


@pytest.mark.parametrize("dataset", DATASETS)
def bench_fig13_panel(benchmark, dataset, dataset_cache, result_store):
    g = dataset_cache(dataset)

    def run():
        return run_bmr_experiment(g, name="fig13", solvers=["mp", "dp-bmr"])

    res = benchmark.pedantic(run, rounds=1, iterations=1)
    result_store[("fig13", dataset)] = res
    res.save()
    print()
    print(ascii_plot(res.objective, title=f"fig13 / {dataset}: storage vs retrieval budget"))
    print(ascii_plot(res.runtime, title=f"fig13 / {dataset}: run time (s)"))

    dp = res.objective["dp-bmr"]
    mp_series = res.objective["mp"]

    # DP-BMR is monotone non-increasing in the budget.
    assert all(a >= b - 1e-6 for a, b in zip(dp.y, dp.y[1:]))

    # At generous budgets DP-BMR matches or beats MP.
    tail = list(zip(dp.y, mp_series.y))[len(dp.y) // 2 :]
    assert all(d <= m * 1.02 + 1e-6 for d, m in tail)

    # At R=0 both must pay full materialization.
    assert dp.y[0] >= mp_series.y[0] * 0.98 - 1e-6

    # Run times comparable within a constant factor (paper's claim).
    t_mp = sum(res.runtime["mp"].y)
    t_dp = sum(res.runtime["dp-bmr"].y)
    assert t_dp <= max(t_mp * 200, 60.0)


def bench_fig13_mp_single_budget(benchmark, dataset_cache):
    g = dataset_cache("styleguide")
    budget = g.max_retrieval_cost() * 3
    benchmark(lambda: mp(g, budget))


def bench_fig13_dp_bmr_single_budget(benchmark, dataset_cache):
    g = dataset_cache("styleguide")
    budget = g.max_retrieval_cost() * 3
    index = extract_index(g)
    benchmark.pedantic(
        lambda: dp_bmr_heuristic(g, budget, index=index), rounds=1, iterations=2
    )
