"""Footnote 12 ablation — bidirectional trees beat arborescences.

"The minimum arborescences on all our experimental datasets tend to
have much worse optimal costs, compared to the minimum bidirectional
trees."  We run the same DP on (a) the extracted bidirectional tree and
(b) the same tree with its reverse deltas disabled (replaced by the
materialization-equivalent synthetic delta), and compare the optimal
frontiers: upward deltas must only ever help, and on version-graph
workloads they help substantially.
"""

import math

import numpy as np

from repro.algorithms.dp_bmr import TreeIndex, extract_index
from repro.algorithms.dp_msr import DPMSRSolver
from repro.bench import markdown_table
from repro.core.graph import VersionGraph


def _arborescence_only_index(index: TreeIndex) -> TreeIndex:
    """Copy the extracted tree, disabling true upward deltas."""
    src = index.graph
    g = VersionGraph(name=f"{src.name}-arbonly")
    for v in src.versions:
        g.add_version(v, src.storage_cost(v))
    for v, p in index.parent.items():
        d = src.delta(p, v)
        g.add_delta(p, v, d.storage, d.retrieval)
        # reverse replaced by the materialize-the-parent equivalent
        g.add_delta(v, p, src.storage_cost(p), 0.0)
    return TreeIndex(g, index.root, index.parent)


def bench_bidirectional_vs_arborescence(benchmark, dataset_cache):
    g = dataset_cache("styleguide")

    def run():
        bidir_index = extract_index(g)
        bidir = DPMSRSolver(g, index=bidir_index, ticks=96).frontier()
        arb = DPMSRSolver(
            g, index=_arborescence_only_index(bidir_index), ticks=96
        ).frontier()
        return bidir, arb

    bidir, arb = benchmark.pedantic(run, rounds=1, iterations=1)

    budgets = np.geomspace(
        max(bidir.min_storage(), arb.min_storage()) * 1.05,
        g.total_version_storage(),
        6,
    )
    rows = []
    gains = []
    for b in budgets:
        rb = bidir.best_retrieval_within(float(b))
        ra = arb.best_retrieval_within(float(b))
        rows.append([f"{b:.3g}", rb, ra, ra / max(rb, 1e-9) if math.isfinite(ra) else "inf"])
        if math.isfinite(ra) and math.isfinite(rb) and rb > 0:
            gains.append(ra / rb)
            # upward deltas can only help
            assert rb <= ra * (1 + 1e-9)
    print()
    print(
        markdown_table(
            ["storage budget", "bidirectional", "arborescence-only", "gain"], rows
        )
    )
    # footnote 12: the bidirectional optimum is substantially better
    assert max(gains) >= 1.1, f"expected a clear bidirectional gain, got {gains}"
