"""Section-6.1 ablation — why LMG-All's wider move set matters.

LMG can only materialize; after the initial minimum arborescence it
never reconsiders non-auxiliary deltas.  LMG-All may re-route through
any edge.  The value of that widening grows with the number of
alternative edges: we sweep ER density and measure the LMG / LMG-All
retrieval ratio (geometric mean over a budget grid).
"""

import math

from repro.bench import markdown_table, run_msr_experiment
from repro.gen import load_dataset

DENSITIES = [0.05, 0.2]


def geomean(xs):
    xs = [max(x, 1e-12) for x in xs]
    return math.exp(sum(math.log(x) for x in xs) / len(xs))


def bench_move_scope_vs_density(benchmark, result_store):
    def run():
        out = {}
        for p in DENSITIES:
            g = load_dataset(f"LeetCode ({p})", scale=0.6, compressed=True)
            res = run_msr_experiment(g, name="ablation-move-scope", solvers=["lmg", "lmg-all"])
            pairs = [
                (l, a)
                for l, a in zip(res.objective["lmg"].y, res.objective["lmg-all"].y)
                if math.isfinite(l) and math.isfinite(a) and a > 0
            ]
            out[p] = geomean([l / a for l, a in pairs])
        return out

    gaps = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(
        markdown_table(
            ["ER density p", "LMG / LMG-All retrieval (geomean)"],
            [[p, gaps[p]] for p in DENSITIES],
        )
    )
    # the wider move set should never hurt, and should pay off visibly
    # on at least one density
    assert all(gap >= 0.95 for gap in gaps.values())
    assert max(gaps.values()) >= 1.15
