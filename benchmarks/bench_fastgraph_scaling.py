"""Fastgraph scaling benchmark: dict reference vs flat-array kernels.

Times the greedy family (LMG, LMG-All, MP) on natural-preset graphs of
increasing size, once through the dict-of-dicts reference solvers and
once through the :mod:`repro.fastgraph` array kernels, and verifies the
two backends produce cost-identical plans at every point.  Results are
written to ``BENCH_fastgraph.json`` at the repository root::

    PYTHONPATH=src python benchmarks/bench_fastgraph_scaling.py
    PYTHONPATH=src python benchmarks/bench_fastgraph_scaling.py --smoke

The acceptance bar tracked by CI: LMG's array kernel is >= 5x faster
than the dict reference on a natural-preset graph with >= 2000
versions (the ``--smoke`` run skips that size; the JSON records
whichever sizes were run).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro.algorithms import lmg, lmg_all, mp
from repro.algorithms.arborescence import min_storage_plan_tree
from repro.fastgraph import lmg_all_array, lmg_array, mp_array
from repro.gen.presets import PRESETS

REPO_ROOT = Path(__file__).resolve().parents[1]
DEFAULT_OUT = REPO_ROOT / "BENCH_fastgraph.json"

#: Natural preset used for scaling (bidirectional branch/merge history).
PRESET = "996.ICU"

FULL_SIZES = (250, 500, 1000, 2000)
SMOKE_SIZES = (100, 250)


def _build(nodes: int):
    preset = PRESETS[PRESET]
    return preset.build(scale=nodes / preset.n_commits)


def _time(fn, *args) -> tuple[float, object]:
    t0 = time.perf_counter()
    out = fn(*args)
    return time.perf_counter() - t0, out


def bench_graph(nodes: int, *, budget_factor: float = 2.0) -> list[dict]:
    """One scaling point: all three solvers, both backends."""
    g = _build(nodes)
    g.compile()  # compile outside the timed region, as sweeps do
    base = min_storage_plan_tree(g).total_storage
    budget = base * budget_factor
    retrieval_budget = g.max_retrieval_cost() * 2

    pairs = [
        ("lmg", lmg, lmg_array, budget),
        ("lmg-all", lmg_all, lmg_all_array, budget),
        ("mp", mp, mp_array, retrieval_budget),
    ]
    rows = []
    for name, ref_fn, arr_fn, b in pairs:
        dict_s, ref_tree = _time(ref_fn, g, b)
        array_s, arr_tree = _time(arr_fn, g, b)
        plans_equal = ref_tree.parent == arr_tree.parent_map()
        rows.append(
            {
                "solver": name,
                "preset": PRESET,
                "nodes": g.num_versions,
                "edges": g.num_deltas,
                "budget": b,
                "dict_seconds": dict_s,
                "array_seconds": array_s,
                "speedup": dict_s / array_s if array_s > 0 else float("inf"),
                "plans_identical": plans_equal,
                "storage": arr_tree.total_storage,
                "retrieval": arr_tree.total_retrieval,
            }
        )
        status = "OK" if plans_equal else "PLAN MISMATCH"
        print(
            f"{PRESET:>10} n={g.num_versions:<6} {name:<8} "
            f"dict={dict_s:8.3f}s array={array_s:8.3f}s "
            f"speedup={rows[-1]['speedup']:6.1f}x [{status}]",
            flush=True,
        )
    return rows


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small sizes only (CI smoke run, < 60 s)",
    )
    parser.add_argument(
        "--sizes",
        type=int,
        nargs="*",
        default=None,
        help="explicit node counts (overrides --smoke)",
    )
    parser.add_argument("--out", default=str(DEFAULT_OUT), help="JSON output path")
    args = parser.parse_args(argv)

    sizes = args.sizes or (SMOKE_SIZES if args.smoke else FULL_SIZES)
    rows: list[dict] = []
    for nodes in sizes:
        rows.extend(bench_graph(nodes))

    mismatches = [r for r in rows if not r["plans_identical"]]
    lmg_rows = [r for r in rows if r["solver"] == "lmg" and r["nodes"] >= 2000]
    payload = {
        "preset": PRESET,
        "sizes": list(sizes),
        "rows": rows,
        "all_plans_identical": not mismatches,
        "lmg_speedup_at_2000_nodes": max(
            (r["speedup"] for r in lmg_rows), default=None
        ),
    }
    Path(args.out).write_text(json.dumps(payload, indent=1))
    print(f"wrote {args.out}")
    if mismatches:
        print(f"FAIL: {len(mismatches)} backend plan mismatches", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
