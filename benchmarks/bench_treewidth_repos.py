"""Footnote 7 — version graphs are tree-like; ER graphs are not.

The paper reports heuristic treewidths of 2/3/6 for datasharing /
styleguide / leetcode and motivates the bounded-treewidth FPTAS with
them; ER graphs have treewidth Θ(n) whp (footnote 18).  We reproduce
both qualitative facts on the emulated datasets.
"""

from repro.bench import footnote7_treewidth
from repro.gen import load_dataset
from repro.treewidth import treewidth_upper_bound, undirected_adjacency


def bench_footnote7_table(benchmark):
    rows = benchmark.pedantic(
        footnote7_treewidth, kwargs={"verbose": True}, rounds=1, iterations=1
    )
    widths = {name: w for name, _, _, w in rows}
    # natural graphs: small constant treewidth (paper: 2, 3, 6; our
    # emulations come out 3-8 — styleguide's merge process is a touch
    # busier than the real repo, see EXPERIMENTS.md)
    assert widths["datasharing"] <= 4
    assert widths["styleguide"] <= 10
    assert widths["LeetCodeAnimation"] <= 8
    # the ER construction destroys tree-likeness
    assert widths["LeetCode (0.05)"] >= 2 * max(
        widths["datasharing"], widths["LeetCodeAnimation"]
    )


def bench_er_treewidth_grows_with_density(benchmark):
    def run():
        out = []
        for p in (0.05, 0.2):
            g = load_dataset(f"LeetCode ({p})", scale=0.4)
            w, _ = treewidth_upper_bound(undirected_adjacency(g))
            out.append((p, g.num_versions, w))
        return out

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    (p1, n1, w1), (p2, n2, w2) = rows
    print(f"\nER treewidth: p={p1}: tw<={w1} (n={n1});  p={p2}: tw<={w2} (n={n2})")
    assert w2 > w1
    assert w2 >= n2 / 4  # Θ(n) regime at p = 0.2
