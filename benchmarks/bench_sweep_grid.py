"""Budget-grid sweep benchmark: trajectory replay vs independent solves.

Times the LMG family over a geometric storage-budget grid twice on a
natural-preset graph: once as ``B`` independent array-kernel solves
(the pre-sweep harness behaviour) and once through the single-pass
trajectory-replay engine (:func:`repro.fastgraph.sweep_greedy`),
verifying the two paths produce *identical* plans at every grid point.
Results go to ``BENCH_sweep.json`` at the repository root::

    PYTHONPATH=src python benchmarks/bench_sweep_grid.py
    PYTHONPATH=src python benchmarks/bench_sweep_grid.py --smoke

Besides the standard 16-point panel, the full run times LMG-All on a
**dense** grid (``DENSE_POINTS``), the regime divergence-continuation
sharing serves: on dense grids adjacent budgets routinely diverge from
the recorded trajectory at the same position, so the band's loosest
member records its live continuation once and the tighter members
replay it (wholly or up to a nested sub-divergence) instead of each
re-running the live kernel.  The panel reports the live kernel moves
actually applied next to the grid size so the sub-linear growth is
visible in the JSON.

The acceptance bar tracked by CI: the sweep must never be slower than
independent solves (``--smoke``), and the full run targets >= 5x at a
16-point grid on the 2000-version natural graph.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro.bench.harness import msr_budget_grid
from repro.core.problems import evaluate_plan
from repro.fastgraph import lmg_all_array, lmg_array, sweep_greedy_msr
from repro.fastgraph import solvers as _solvers
from repro.gen.presets import PRESETS

REPO_ROOT = Path(__file__).resolve().parents[1]
DEFAULT_OUT = REPO_ROOT / "BENCH_sweep.json"

#: Natural preset used for scaling (bidirectional branch/merge history).
PRESET = "996.ICU"

FULL_NODES = 2000
SMOKE_NODES = 250
GRID_POINTS = 16

#: Dense-grid size for the continuation-sharing panel (full runs only).
DENSE_POINTS = 64

SOLVERS = {"lmg": lmg_array, "lmg-all": lmg_all_array}


def _count_live_moves(run_fn):
    """Wrap a resumable kernel runner to count the moves it applies.

    The trajectory engine drives the same runner for the one recording
    pass (its first invocation) and for every live continuation;
    ``counter["recording_moves"]`` captures the first call separately
    so ``moves - recording_moves`` is the live-continuation total — the
    quantity divergence-continuation sharing shrinks.
    """
    counter = {"moves": 0, "calls": 0, "recording_moves": 0}

    def wrapped(cg, tree, budget, rounds, record=None):
        rec = record if record is not None else []
        before = len(rec)
        out = run_fn(cg, tree, budget, rounds, rec)
        applied = len(rec) - before
        counter["moves"] += applied
        if counter["calls"] == 0:
            counter["recording_moves"] = applied
        counter["calls"] += 1
        return out

    return wrapped, counter


def bench_dense_sharing(g, points: int) -> dict:
    """LMG-All on a dense grid: the continuation-sharing regime.

    Reports the sweep/independent speedup plus the live kernel moves
    the sweep applied beyond the one recording run — with sharing,
    same-band budgets replay each other's recorded continuations, so
    live moves grow sub-linearly in the grid size.
    """
    from repro.fastgraph import trajectory as _traj

    grid = msr_budget_grid(g, points=points, span=4.0)

    wrapped, counter = _count_live_moves(_solvers._lmg_all_run)
    original = _traj.TRAJECTORY_SOLVERS[("msr", "lmg-all")]
    patched = type(original)(original.start, wrapped, original.rounds)
    _traj.TRAJECTORY_SOLVERS[("msr", "lmg-all")] = patched
    try:
        t0 = time.perf_counter()
        entries = sweep_greedy_msr(g, "lmg-all", grid)
        sweep_s = time.perf_counter() - t0
    finally:
        _traj.TRAJECTORY_SOLVERS[("msr", "lmg-all")] = original
    # symmetric work on the independent side: solve, export, score
    t0 = time.perf_counter()
    independent = []
    for b in grid:
        plan = lmg_all_array(g, b).to_plan()
        independent.append((plan, evaluate_plan(g, plan)))
    indep_s = time.perf_counter() - t0
    identical = all(
        e.plan == p and e.score == s for e, (p, s) in zip(entries, independent)
    )

    return {
        "solver": "lmg-all",
        "grid_points": points,
        "sweep_seconds": sweep_s,
        "independent_seconds": indep_s,
        "speedup": indep_s / sweep_s if sweep_s > 0 else float("inf"),
        "kernel_calls": counter["calls"],
        "recording_moves": counter["recording_moves"],
        "live_moves": counter["moves"] - counter["recording_moves"],
        "live_points": sum(1 for e in entries if e.feasible and not e.replayed),
        "plans_identical": identical,
    }


def _build(nodes: int):
    preset = PRESETS[PRESET]
    return preset.build(scale=nodes / preset.n_commits)


def bench_sweep(g, points: int) -> list[dict]:
    """One grid comparison per solver: sweep vs independent probes.

    ``g`` arrives pre-built and pre-compiled (setup is outside every
    timed region, as both measured paths assume).
    """
    grid = msr_budget_grid(g, points=points, span=4.0)  # the shipped grid

    rows = []
    for name, solve in SOLVERS.items():
        t0 = time.perf_counter()
        entries = sweep_greedy_msr(g, name, grid)
        sweep_s = time.perf_counter() - t0

        # independent path does the same work the pre-sweep harness did
        # per budget — solve, export, score — so the timing is symmetric
        # with the sweep (whose entries carry plans and scores too)
        t0 = time.perf_counter()
        independent = []
        for b in grid:
            tree = solve(g, b)
            plan = tree.to_plan()
            independent.append((plan, evaluate_plan(g, plan)))
        indep_s = time.perf_counter() - t0

        identical = all(
            e.plan == plan and e.score == score
            for e, (plan, score) in zip(entries, independent)
        )
        replayed = sum(1 for e in entries if e.replayed)
        rows.append(
            {
                "solver": name,
                "preset": PRESET,
                "nodes": g.num_versions,
                "edges": g.num_deltas,
                "grid_points": points,
                "sweep_seconds": sweep_s,
                "independent_seconds": indep_s,
                "speedup": indep_s / sweep_s if sweep_s > 0 else float("inf"),
                "replayed_points": replayed,
                "diverged_points": points - replayed,
                "plans_identical": identical,
            }
        )
        status = "OK" if identical else "PLAN MISMATCH"
        print(
            f"{PRESET:>10} n={g.num_versions:<6} {name:<8} grid={points:<3} "
            f"sweep={sweep_s:8.3f}s independent={indep_s:8.3f}s "
            f"speedup={rows[-1]['speedup']:6.1f}x [{status}]",
            flush=True,
        )
    return rows


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small size only (CI smoke run, < 60 s)",
    )
    parser.add_argument(
        "--nodes", type=int, default=None, help="explicit node count"
    )
    parser.add_argument(
        "--points", type=int, default=GRID_POINTS, help="budget-grid size"
    )
    parser.add_argument("--out", default=str(DEFAULT_OUT), help="JSON output path")
    args = parser.parse_args(argv)

    nodes = args.nodes or (SMOKE_NODES if args.smoke else FULL_NODES)
    g = _build(nodes)
    g.compile()  # one build + compile shared by every panel
    rows = bench_sweep(g, args.points)

    dense = None
    if not args.smoke:
        dense = bench_dense_sharing(g, DENSE_POINTS)
        print(
            f"{PRESET:>10} n={g.num_versions:<6} lmg-all  dense grid="
            f"{DENSE_POINTS:<3} sweep={dense['sweep_seconds']:8.3f}s "
            f"independent={dense['independent_seconds']:8.3f}s "
            f"speedup={dense['speedup']:6.1f}x "
            f"live_moves={dense['live_moves']}",
            flush=True,
        )

    mismatches = [r for r in rows if not r["plans_identical"]]
    if dense is not None and not dense["plans_identical"]:
        mismatches.append(dense)
    slower = [r for r in rows if r["speedup"] < 1.0]
    payload = {
        "preset": PRESET,
        "nodes": nodes,
        "grid_points": args.points,
        "rows": rows,
        # the continuation-sharing regime: dense grids, where same-band
        # budgets replay each other's recorded continuations
        "dense_sharing": dense,
        "all_plans_identical": not mismatches,
        "sweep_never_slower": not slower,
        "min_speedup": min(r["speedup"] for r in rows),
        # headline metrics: LMG (ISSUE-2 bar; its trajectory rarely
        # diverges) and LMG-All (ISSUE-5 bar: divergence-continuation
        # sharing — diverged grid points in one band replay the loosest
        # member's recorded continuation instead of each re-running the
        # live kernel, lifting the speedup from the pre-sharing 3.3x)
        "lmg_speedup": next(
            (r["speedup"] for r in rows if r["solver"] == "lmg"), None
        ),
        "lmg_all_speedup": next(
            (r["speedup"] for r in rows if r["solver"] == "lmg-all"), None
        ),
    }
    Path(args.out).write_text(json.dumps(payload, indent=1))
    print(f"wrote {args.out}")
    if mismatches:
        print(f"FAIL: {len(mismatches)} sweep plan mismatches", file=sys.stderr)
        return 1
    if slower:
        print(
            f"FAIL: sweep slower than independent solves for "
            f"{[r['solver'] for r in slower]}",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
