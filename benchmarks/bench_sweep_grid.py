"""Budget-grid sweep benchmark: trajectory replay vs independent solves.

Times the LMG family over a geometric storage-budget grid twice on a
natural-preset graph: once as ``B`` independent array-kernel solves
(the pre-sweep harness behaviour) and once through the single-pass
trajectory-replay engine (:func:`repro.fastgraph.sweep_greedy_msr`),
verifying the two paths produce *identical* plans at every grid point.
Results go to ``BENCH_sweep.json`` at the repository root::

    PYTHONPATH=src python benchmarks/bench_sweep_grid.py
    PYTHONPATH=src python benchmarks/bench_sweep_grid.py --smoke

The acceptance bar tracked by CI: the sweep must never be slower than
independent solves (``--smoke``), and the full run targets >= 5x at a
16-point grid on the 2000-version natural graph.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro.bench.harness import msr_budget_grid
from repro.core.problems import evaluate_plan
from repro.fastgraph import lmg_all_array, lmg_array, sweep_greedy_msr
from repro.gen.presets import PRESETS

REPO_ROOT = Path(__file__).resolve().parents[1]
DEFAULT_OUT = REPO_ROOT / "BENCH_sweep.json"

#: Natural preset used for scaling (bidirectional branch/merge history).
PRESET = "996.ICU"

FULL_NODES = 2000
SMOKE_NODES = 250
GRID_POINTS = 16

SOLVERS = {"lmg": lmg_array, "lmg-all": lmg_all_array}


def _build(nodes: int):
    preset = PRESETS[PRESET]
    return preset.build(scale=nodes / preset.n_commits)


def bench_sweep(nodes: int, points: int) -> list[dict]:
    """One grid comparison per solver: sweep vs independent probes."""
    g = _build(nodes)
    g.compile()  # compile outside the timed region, as both paths do
    grid = msr_budget_grid(g, points=points, span=4.0)  # the shipped grid

    rows = []
    for name, solve in SOLVERS.items():
        t0 = time.perf_counter()
        entries = sweep_greedy_msr(g, name, grid)
        sweep_s = time.perf_counter() - t0

        # independent path does the same work the pre-sweep harness did
        # per budget — solve, export, score — so the timing is symmetric
        # with the sweep (whose entries carry plans and scores too)
        t0 = time.perf_counter()
        independent = []
        for b in grid:
            tree = solve(g, b)
            plan = tree.to_plan()
            independent.append((plan, evaluate_plan(g, plan)))
        indep_s = time.perf_counter() - t0

        identical = all(
            e.plan == plan and e.score == score
            for e, (plan, score) in zip(entries, independent)
        )
        replayed = sum(1 for e in entries if e.replayed)
        rows.append(
            {
                "solver": name,
                "preset": PRESET,
                "nodes": g.num_versions,
                "edges": g.num_deltas,
                "grid_points": points,
                "sweep_seconds": sweep_s,
                "independent_seconds": indep_s,
                "speedup": indep_s / sweep_s if sweep_s > 0 else float("inf"),
                "replayed_points": replayed,
                "diverged_points": points - replayed,
                "plans_identical": identical,
            }
        )
        status = "OK" if identical else "PLAN MISMATCH"
        print(
            f"{PRESET:>10} n={g.num_versions:<6} {name:<8} grid={points:<3} "
            f"sweep={sweep_s:8.3f}s independent={indep_s:8.3f}s "
            f"speedup={rows[-1]['speedup']:6.1f}x [{status}]",
            flush=True,
        )
    return rows


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small size only (CI smoke run, < 60 s)",
    )
    parser.add_argument(
        "--nodes", type=int, default=None, help="explicit node count"
    )
    parser.add_argument(
        "--points", type=int, default=GRID_POINTS, help="budget-grid size"
    )
    parser.add_argument("--out", default=str(DEFAULT_OUT), help="JSON output path")
    args = parser.parse_args(argv)

    nodes = args.nodes or (SMOKE_NODES if args.smoke else FULL_NODES)
    rows = bench_sweep(nodes, args.points)

    mismatches = [r for r in rows if not r["plans_identical"]]
    slower = [r for r in rows if r["speedup"] < 1.0]
    payload = {
        "preset": PRESET,
        "nodes": nodes,
        "grid_points": args.points,
        "rows": rows,
        "all_plans_identical": not mismatches,
        "sweep_never_slower": not slower,
        "min_speedup": min(r["speedup"] for r in rows),
        # headline metric (the ISSUE-2 acceptance bar tracks LMG, whose
        # trajectory rarely diverges; LMG-All pays live continuations
        # at diverged grid points to stay plan-identical)
        "lmg_speedup": next(
            (r["speedup"] for r in rows if r["solver"] == "lmg"), None
        ),
    }
    Path(args.out).write_text(json.dumps(payload, indent=1))
    print(f"wrote {args.out}")
    if mismatches:
        print(f"FAIL: {len(mismatches)} sweep plan mismatches", file=sys.stderr)
        return 1
    if slower:
        print(
            f"FAIL: sweep slower than independent solves for "
            f"{[r['solver'] for r in slower]}",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
