"""Online ingest benchmark: incremental compile + repair vs rebuild-and-resolve.

Streams a simulated repository (real file contents, byte-accurate Myers
delta costs) through :class:`repro.engine.IngestEngine` and times every
arrival: the mutation-event append extends the cached compiled graph in
place, the live plan is repaired with an O(depth) greedy attach, and
staleness-bounded full re-solves keep it near-optimal.  The baseline is
what the batch pipeline would have to do per arrival: recompile the
whole graph from scratch and run a full solve (sampled every
``--baseline-every`` arrivals to keep the benchmark finite, since it is
hundreds of times slower).

Diff costs are precomputed once and shared by both paths, so the
comparison isolates exactly the ISSUE-3 acceptance quantity — per
arrival, *incremental compile + repair* vs *rebuild and re-solve*.
Results go to ``BENCH_ingest.json`` at the repository root::

    PYTHONPATH=src python benchmarks/bench_ingest.py
    PYTHONPATH=src python benchmarks/bench_ingest.py --smoke

Acceptance gates: the engine's post-re-solve plan must equal a
from-scratch solve on the final graph, the incremental compiled graph
must equal a fresh compile elementwise, and mean ingest cost at 2000
versions must be >= 10x cheaper than rebuild-and-resolve (>= 2x in the
CI smoke run, whose graphs are too small to amortize).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

from repro.core.graph import VersionGraph
from repro.engine import IngestEngine
from repro.fastgraph import lmg_array
from repro.fastgraph.compiled import CompiledGraph
from repro.vcs import random_repository, snapshot_delta_bytes_pair

REPO_ROOT = Path(__file__).resolve().parents[1]
DEFAULT_OUT = REPO_ROOT / "BENCH_ingest.json"

FULL_NODES = 2000
SMOKE_NODES = 250
SEED = 2024
# Dynamic budget = factor x the engine's online min-storage lower bound
# (the CLI default).  A budget that grows with the stream keeps every
# prefix realistically constrained; a fixed final-size budget would let
# early prefixes materialize everything (zero-retrieval degenerate
# phase) and re-solve on every arrival.
BUDGET_FACTOR = 4.0
STALENESS = 0.1

COMPARED_ARRAYS = (
    "node_storage",
    "edge_src",
    "edge_dst",
    "edge_storage",
    "edge_retrieval",
    "aux_edge",
    "out_indptr",
    "out_edges",
    "in_indptr",
    "in_edges",
)


def prediff(repo) -> list[list[tuple]]:
    """Per-commit engine-format delta lists (diff cost paid once)."""
    out = []
    for c in repo.commits:
        deltas = []
        for p in c.parents:
            fwd, bwd = snapshot_delta_bytes_pair(
                repo.commits[p].snapshot, c.snapshot
            )
            deltas.append((p, c.id, float(fwd), float(fwd)))
            deltas.append((c.id, p, float(bwd), float(bwd)))
        out.append(deltas)
    return out


def build_batch_graph(repo, deltas_by_commit) -> VersionGraph:
    g = VersionGraph(name="ingest-bench")
    for c in repo.commits:
        g.add_version(c.id, float(c.total_bytes()))
    for deltas in deltas_by_commit:
        for u, v, s, r in deltas:
            g.add_delta(u, v, s, r)
    return g


def bench_ingest(nodes: int, baseline_every: int, entry_every: int) -> dict:
    repo = random_repository(nodes, seed=SEED)
    n = repo.num_commits
    deltas_by_commit = prediff(repo)
    final_graph = build_batch_graph(repo, deltas_by_commit)
    cg_final = CompiledGraph(final_graph)

    # ---- incremental path: the engine, timed per arrival -------------
    engine = IngestEngine(
        budget_factor=BUDGET_FACTOR, solver="lmg", staleness_threshold=STALENESS
    )
    entries = []
    ingest_seconds = np.empty(n)
    budgets = np.empty(n)  # per-arrival budgets, replayed by the baseline
    for c in repo.commits:
        stats = engine.ingest_version(
            c.id, float(c.total_bytes()), deltas_by_commit[c.id]
        )
        ingest_seconds[c.id] = stats.seconds
        budgets[c.id] = stats.budget
        if c.id % entry_every == 0 or c.id == n - 1:
            entries.append(
                {
                    "index": stats.index,
                    "ingest_seconds": stats.seconds,
                    "budget": stats.budget,
                    "staleness": stats.staleness,
                    "resolved": stats.resolved,
                    "storage": stats.storage,
                    "retrieval": stats.retrieval,
                }
            )

    # ---- baseline: rebuild-and-resolve per arrival (sampled) ---------
    # the same graph stream and the same per-arrival budgets; each
    # sample pays what the batch pipeline pays per arrival
    baseline_g = VersionGraph(name="baseline")
    baseline_samples = []
    for c in repo.commits:
        baseline_g.add_version(c.id, float(c.total_bytes()))
        for u, v, s, r in deltas_by_commit[c.id]:
            baseline_g.add_delta(u, v, s, r)
        if c.id % baseline_every == 0 or c.id == n - 1:
            t0 = time.perf_counter()
            cg = CompiledGraph(baseline_g)  # from-scratch recompile
            lmg_array(cg, float(budgets[c.id]))  # full re-solve
            baseline_samples.append(
                {"index": c.id, "seconds": time.perf_counter() - t0}
            )

    # ---- acceptance checks -------------------------------------------
    budget = engine.current_budget()
    final_tree = engine.resolve()
    ref_tree = lmg_array(cg_final, budget)
    plans_identical = (
        final_tree.to_plan() == ref_tree.to_plan()
        and final_tree.total_storage == ref_tree.total_storage
        and final_tree.total_retrieval == ref_tree.total_retrieval
    )
    cg_inc = engine.graph.compile()
    compiled_identical = all(
        np.array_equal(getattr(cg_inc, a), getattr(cg_final, a))
        for a in COMPARED_ARRAYS
    )

    mean_ingest = float(ingest_seconds.mean())
    mean_rebuild = float(
        np.mean([s["seconds"] for s in baseline_samples])
    )
    speedup = mean_rebuild / mean_ingest if mean_ingest > 0 else float("inf")
    print(
        f"n={n:<6} ingest={mean_ingest * 1e3:8.3f} ms/arrival "
        f"rebuild+resolve={mean_rebuild * 1e3:8.3f} ms/arrival "
        f"speedup={speedup:7.1f}x resolves={engine.resolves} "
        f"[{'OK' if plans_identical and compiled_identical else 'MISMATCH'}]",
        flush=True,
    )
    return {
        "nodes": n,
        "edges": final_graph.num_deltas,
        "seed": SEED,
        "budget_factor": BUDGET_FACTOR,
        "final_budget": budget,
        "solver": "lmg",
        "staleness_threshold": STALENESS,
        "resolves": engine.resolves,
        "entries": entries,
        "baseline_sampled_every": baseline_every,
        "baseline_samples": baseline_samples,
        "mean_ingest_seconds": mean_ingest,
        "mean_rebuild_resolve_seconds": mean_rebuild,
        "speedup": speedup,
        "plans_identical": plans_identical,
        "compiled_identical": compiled_identical,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small size only (CI smoke run, < 60 s)",
    )
    parser.add_argument("--nodes", type=int, default=None, help="explicit node count")
    parser.add_argument(
        "--baseline-every",
        type=int,
        default=None,
        help="sample the rebuild-and-resolve baseline every K arrivals "
        "(default: 25 smoke / 50 full)",
    )
    parser.add_argument("--out", default=str(DEFAULT_OUT), help="JSON output path")
    args = parser.parse_args(argv)

    nodes = args.nodes or (SMOKE_NODES if args.smoke else FULL_NODES)
    baseline_every = args.baseline_every or (25 if args.smoke else 50)
    entry_every = max(1, nodes // 100)
    payload = bench_ingest(nodes, baseline_every, entry_every)
    payload["smoke"] = args.smoke
    payload["speedup_floor"] = 2.0 if args.smoke else 10.0

    Path(args.out).write_text(json.dumps(payload, indent=1, allow_nan=False))
    print(f"wrote {args.out}")
    if not payload["plans_identical"]:
        print("FAIL: engine plan != from-scratch solve", file=sys.stderr)
        return 1
    if not payload["compiled_identical"]:
        print("FAIL: incremental compile != fresh compile", file=sys.stderr)
        return 1
    if payload["speedup"] < payload["speedup_floor"]:
        print(
            f"FAIL: ingest speedup {payload['speedup']:.1f}x below the "
            f"{payload['speedup_floor']:.0f}x floor",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
