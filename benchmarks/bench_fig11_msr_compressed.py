"""Figure 11 — MSR on randomly-compressed natural graphs (+ run times).

Random compression decouples storage and retrieval costs, which the
paper reports narrows (but does not erase) DP-MSR's lead — the
extracted spanning tree no longer contains all the information.  The
run-time panel's headline is that LMG-All is no slower than LMG on
sparse graphs despite the larger move set.
"""

import math

import pytest

from repro.bench import ascii_plot, run_msr_experiment

DATASETS = ["datasharing", "styleguide", "996.ICU"]


def geomean(xs):
    xs = [max(x, 1e-12) for x in xs]
    return math.exp(sum(math.log(x) for x in xs) / len(xs))


@pytest.mark.parametrize("dataset", DATASETS)
def bench_fig11_panel(benchmark, dataset, dataset_cache, result_store):
    g = dataset_cache(dataset, True)  # compressed variant

    def run():
        return run_msr_experiment(
            g,
            name="fig11",
            solvers=["lmg", "lmg-all", "dp-msr"],
            include_ilp=(dataset == "datasharing"),
        )

    res = benchmark.pedantic(run, rounds=1, iterations=1)
    result_store[("fig11", dataset)] = res
    res.save()
    print()
    print(ascii_plot(res.objective, title=f"fig11 / {dataset} (compressed): retrieval"))
    print(ascii_plot(res.runtime, title=f"fig11 / {dataset} (compressed): run time (s)"))

    dp = res.objective["dp-msr"]
    la = res.objective["lmg-all"]
    lm = res.objective["lmg"]

    # LMG-All still dominates LMG on compressed graphs.
    ratios = [
        l / a for a, l in zip(la.y, lm.y) if math.isfinite(l) and math.isfinite(a) and a > 0
    ]
    assert geomean(ratios) >= 0.9

    # DP stays competitive (paper: "dominance less significant"): allow
    # DP to lose by a bounded factor but require overall competitiveness.
    pairs = [
        (d, min(l, a))
        for d, l, a in zip(dp.y, lm.y, la.y)
        if math.isfinite(d) and math.isfinite(min(l, a)) and min(l, a) > 0
    ]
    assert geomean([d / b for d, b in pairs]) <= 2.0

    # Run-time claim: LMG-All is not slower than LMG beyond a small
    # factor on sparse (natural-shape) graphs.
    t_lmg = sum(res.runtime["lmg"].y)
    t_la = sum(res.runtime["lmg-all"].y)
    assert t_la <= max(t_lmg * 3.0, t_lmg + 0.5)
