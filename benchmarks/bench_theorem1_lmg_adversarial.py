"""Theorem 1 — LMG is arbitrarily bad on the adversarial chain.

Measures LMG vs OPT on the Figure-2 chain for growing ``c/b`` and
asserts the approximation gap grows proportionally — the executable
version of the proof of Theorem 1.
"""

from repro.bench import theorem1


def bench_theorem1_gap_growth(benchmark):
    rows = benchmark.pedantic(theorem1, kwargs={"verbose": True}, rounds=1, iterations=1)
    gaps = [r.gap for r in rows]
    ratios = [r.c_over_b for r in rows]
    # gap strictly increases with c/b ...
    assert all(a < b for a, b in zip(gaps, gaps[1:]))
    # ... and tracks it within a factor of ~2 (theory: gap -> c/b)
    for gap, cb in zip(gaps, ratios):
        assert gap >= cb / 2
