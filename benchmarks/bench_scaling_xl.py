"""XL scaling tier: incremental kernels vs frozen rescan baselines.

Where ``bench_fastgraph_scaling.py`` compares the array kernels against
the *dict* reference (and therefore tops out at a few thousand
versions), this tier compares the incremental array kernels of
:mod:`repro.fastgraph.solvers` against the frozen rescan-per-round
baselines of :mod:`repro.fastgraph.rescan` — both flat-array, so the
ratio isolates exactly what the incremental rewrite buys.  Three panels
per tier, written to ``BENCH_xl.json`` at the repository root::

    PYTHONPATH=src python benchmarks/bench_scaling_xl.py          # 20k + 100k
    PYTHONPATH=src python benchmarks/bench_scaling_xl.py --smoke  # CI, < 60 s

* **solve** — LMG / LMG-All / BMR-LMG, incremental vs rescan from a
  *shared* min-storage start (Edmonds runs once per tier and is timed
  as its own non-gated metric; it is ~quadratic on bidirectional
  graphs and deliberately out of scope here).  Emits the gated
  ``*_speedup`` ratios, per-solver plan-identity booleans and the
  ``xl_gate_5x`` acceptance flag (every tracked speedup >= 5).
* **sweep** — a budget-grid LMG sweep via trajectory replay, reusing
  the tier's start edges (absolute seconds, untracked).
* **ingest** — online append throughput: new versions folded into the
  compiled arrays through the mutation-event path (untracked).

The 100k tier skips everything Edmonds-priced or rescan-priced: it runs
the BMR family (O(V) materialized start) with capped rounds plus the
ingest panel, proving capability at scale without hour-long baselines.
Gating happens on the smoke variant: CI runs ``--smoke`` (writing
``BENCH_xl_smoke.json``) and feeds it to ``repro-versioning
bench-check`` against the committed baseline — see docs/benchmarks.md.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

from repro.fastgraph import sweep_greedy_msr
from repro.fastgraph.arborescence import min_storage_parent_edges
from repro.fastgraph.plantree import ArrayPlanTree
from repro.fastgraph.rescan import (
    _bmr_run_rescan,
    _lmg_all_run_rescan,
    _lmg_run_rescan,
)
from repro.fastgraph.solvers import (
    _bmr_default_rounds,
    _bmr_run,
    _lmg_all_default_rounds,
    _lmg_all_run,
    _lmg_candidates,
    _lmg_default_rounds,
    _lmg_run,
    _materialized_array_tree,
)
from repro.gen.presets import PRESETS

REPO_ROOT = Path(__file__).resolve().parents[1]
DEFAULT_OUT = REPO_ROOT / "BENCH_xl.json"

#: Natural preset used for scaling (bidirectional branch/merge history).
PRESET = "996.ICU"

FULL_SIZES = (20000, 100000)
SMOKE_SIZES = (1000,)

#: Rescan baselines (and the shared Edmonds start) are priced out above
#: this size; larger tiers run capability panels only.
COMPARE_CAP = 20000

#: Move cap for the capability tiers (full BMR rounds at 100k versions
#: would apply ~100k moves; the panel only needs a stable rate sample).
CAPABILITY_ROUNDS = 20000

#: Versions appended by the ingest panel.
INGEST_APPENDS = 2000

#: Below this tier size the kernel timings are sub-second and their
#: ratios are dominated by noise, so the gated ``*_speedup`` keys are
#: withheld (smoke baselines gate the plan-identity booleans only).
TRACKED_SPEEDUP_MIN_NODES = 5000


def _build(nodes: int):
    preset = PRESETS[PRESET]
    return preset.build(scale=nodes / preset.n_commits)


def _time(fn, *args, **kwargs) -> tuple[float, object]:
    t0 = time.perf_counter()
    out = fn(*args, **kwargs)
    return time.perf_counter() - t0, out


def _same_plan(a: ArrayPlanTree, b: ArrayPlanTree) -> bool:
    return (
        np.array_equal(a.parent, b.parent)
        and a.total_storage == b.total_storage
        and a.total_retrieval == b.total_retrieval
    )


def solve_panel(cg, start_edges) -> tuple[list[dict], dict]:
    """Incremental vs rescan for the three greedy kernels, shared start."""
    base = ArrayPlanTree(cg, start_edges)
    budget = base.total_storage * 2.0
    # materialized retrieval is 0 everywhere (stored-in-full versions
    # reconstruct for free), so the cap must come from the delta edges:
    # twice the worst single-delta retrieval admits real chains while
    # still rejecting most deep ones, keeping the greedy loop busy
    retrieval_budget = float(cg.edge_retrieval.max()) * 2.0
    # LMG gets a work-representative budget: 10% of the way from the
    # minimum-storage start to full materialization.  A small multiple
    # of the start admits only a handful of moves at this scale, which
    # times kernel setup instead of the greedy loop.
    full_storage = float(cg.edge_storage[cg.aux_edge].sum())
    lmg_budget = base.total_storage + 0.1 * (full_storage - base.total_storage)

    def run_lmg(tree):
        _lmg_run(
            cg, tree, _lmg_candidates(cg, tree), lmg_budget, _lmg_default_rounds(cg)
        )

    def run_lmg_rescan(tree):
        _lmg_run_rescan(
            cg, tree, _lmg_candidates(cg, tree), lmg_budget, _lmg_default_rounds(cg)
        )

    cases = [
        (
            "lmg",
            lambda: ArrayPlanTree(cg, start_edges),
            run_lmg,
            run_lmg_rescan,
            lmg_budget,
        ),
        (
            "lmg-all",
            lambda: ArrayPlanTree(cg, start_edges),
            lambda t: _lmg_all_run(cg, t, budget, _lmg_all_default_rounds(cg)),
            lambda t: _lmg_all_run_rescan(cg, t, budget, _lmg_all_default_rounds(cg)),
            budget,
        ),
        (
            "bmr-lmg",
            lambda: _materialized_array_tree(cg),
            lambda t: _bmr_run(cg, t, retrieval_budget, _bmr_default_rounds(cg)),
            lambda t: _bmr_run_rescan(
                cg, t, retrieval_budget, _bmr_default_rounds(cg)
            ),
            retrieval_budget,
        ),
    ]
    rows = []
    speedups: dict[str, float] = {}
    for name, make_tree, run_new, run_old, b in cases:
        tree_new = make_tree()
        new_s, _ = _time(run_new, tree_new)
        tree_old = make_tree()
        old_s, _ = _time(run_old, tree_old)
        identical = _same_plan(tree_new, tree_old)
        speedup = old_s / new_s if new_s > 0 else float("inf")
        speedups[name] = speedup
        rows.append(
            {
                "solver": name,
                "budget": b,
                "incremental_seconds": new_s,
                "rescan_seconds": old_s,
                "speedup": speedup,
                "plans_identical": identical,
                "storage": tree_new.total_storage,
                "retrieval": tree_new.total_retrieval,
            }
        )
        status = "OK" if identical else "PLAN MISMATCH"
        print(
            f"  solve   {name:<8} incr={new_s:8.2f}s rescan={old_s:8.2f}s "
            f"speedup={speedup:6.1f}x [{status}]",
            flush=True,
        )
    return rows, speedups


def sweep_panel(cg, start_edges) -> dict:
    """Budget-grid LMG sweep through trajectory replay."""
    base = ArrayPlanTree(cg, start_edges).total_storage
    budgets = [base * f for f in (1.05, 1.2, 1.4, 1.7, 2.0, 2.5, 3.0, 4.0)]
    secs, entries = _time(
        sweep_greedy_msr, cg, "lmg", budgets, start_edges=start_edges
    )
    print(f"  sweep   lmg x{len(budgets)} budgets in {secs:8.2f}s", flush=True)
    return {
        "solver": "lmg",
        "points": len(budgets),
        "sweep_seconds": secs,
        "monotone_storage": all(
            a.score is not None
            and b.score is not None
            and a.score.storage <= b.score.storage + 1e-9
            for a, b in zip(entries, entries[1:])
        ),
    }


def capability_panel(cg) -> dict:
    """Capped BMR run for tiers too large for the rescan baseline."""
    tree = _materialized_array_tree(cg)
    retrieval_budget = float(cg.edge_retrieval.max()) * 2.0
    rounds = min(CAPABILITY_ROUNDS, _bmr_default_rounds(cg))
    secs, applied = _time(_bmr_run, cg, tree, retrieval_budget, rounds)
    print(
        f"  bmr-cap {applied} moves in {secs:8.2f}s "
        f"({applied / secs if secs > 0 else 0.0:,.0f} moves/s)",
        flush=True,
    )
    return {
        "solver": "bmr-lmg",
        "rounds_cap": rounds,
        "moves_applied": int(applied),
        "seconds": secs,
        "moves_per_second": applied / secs if secs > 0 else None,
        "storage": tree.total_storage,
    }


def ingest_panel(graph, appends: int) -> dict:
    """Online append throughput through the compiled mutation path."""
    graph.compile()
    prev = next(iter(graph.versions))  # chain the appends off one tip
    t0 = time.perf_counter()
    for i in range(appends):
        v = f"xl-ingest-{i}"
        graph.add_version(v, 10.0)
        graph.add_delta(prev, v, 3.0, 1.0)
        prev = v
    cg = graph.compile()  # folds the pending appends into the arrays
    secs = time.perf_counter() - t0
    print(
        f"  ingest  {appends} appends in {secs:8.2f}s "
        f"({appends / secs if secs > 0 else 0.0:,.0f}/s)",
        flush=True,
    )
    return {
        "appends": appends,
        "seconds": secs,
        "appends_per_second": appends / secs if secs > 0 else None,
        "versions_after": cg.n,
    }


def _start_with_cache(cg, cache_dir: str | None, nodes: int):
    """Edmonds start edges, memoized on disk (it is minutes at 20k).

    The min-storage arborescence is deterministic for a preset + size,
    so regeneration workflows (budget probing, re-runs after a kernel
    change) can reuse one computed start; ``edmonds_seconds`` records
    the original solve time either way.
    """
    if cache_dir:
        path = Path(cache_dir) / f"edmonds_{PRESET.replace('.', '_')}_{nodes}.npz"
        if path.exists():
            blob = np.load(path)
            edges = [(int(v), int(e)) for v, e in blob["edges"]]
            return float(blob["seconds"]), edges
    ed_s, start_edges = _time(min_storage_parent_edges, cg)
    if cache_dir:
        Path(cache_dir).mkdir(parents=True, exist_ok=True)
        np.savez(
            path, edges=np.asarray(start_edges, dtype=np.int64), seconds=ed_s
        )
    return ed_s, start_edges


def bench_tier(nodes: int, *, start_cache: str | None = None) -> dict:
    g = _build(nodes)
    cg = g.compile()
    print(f"{PRESET} n={cg.n} m={cg.num_edges} (index {cg.index_dtype})", flush=True)
    tier: dict = {
        "nodes": cg.n,
        "edges": cg.num_edges,
        "index_dtype": str(np.dtype(cg.index_dtype)),
    }
    if nodes <= COMPARE_CAP:
        ed_s, start_edges = _start_with_cache(cg, start_cache, nodes)
        print(f"  edmonds start in {ed_s:8.2f}s", flush=True)
        tier["edmonds_seconds"] = ed_s
        tier["solve"], tier["speedups"] = solve_panel(cg, start_edges)
        tier["sweep"] = sweep_panel(cg, start_edges)
    else:
        tier["capability"] = capability_panel(cg)
    tier["ingest"] = ingest_panel(g, INGEST_APPENDS)
    return tier


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="one small tier only (CI smoke run, < 60 s); writes "
        "BENCH_xl_smoke.json unless --out is given",
    )
    parser.add_argument(
        "--sizes",
        type=int,
        nargs="*",
        default=None,
        help="explicit tier sizes (overrides --smoke)",
    )
    parser.add_argument("--out", default=None, help="JSON output path")
    parser.add_argument(
        "--start-cache",
        default=None,
        help="directory memoizing the Edmonds start per tier (.npz); the "
        "arborescence is quadratic on these bidirectional graphs, so "
        "reruns should not pay it twice",
    )
    args = parser.parse_args(argv)

    sizes = args.sizes or (SMOKE_SIZES if args.smoke else FULL_SIZES)
    out = args.out or str(
        REPO_ROOT / ("BENCH_xl_smoke.json" if args.smoke else "BENCH_xl.json")
    )

    tiers = [bench_tier(n, start_cache=args.start_cache) for n in sizes]

    # gate metrics come from the largest tier that ran the comparison;
    # tracked *_speedup keys are only emitted for tiers big enough that
    # the ratios are not sub-second timing noise (smoke runs gate plan
    # identity only — see docs/benchmarks.md)
    gated = [t for t in tiers if "speedups" in t]
    payload: dict = {"preset": PRESET, "sizes": list(sizes), "tiers": tiers}
    if gated:
        top = max(gated, key=lambda t: t["nodes"])
        speedups = top["speedups"]
        payload["gate_nodes"] = top["nodes"]
        payload["all_plans_identical"] = all(
            r["plans_identical"] for t in gated for r in t["solve"]
        )
        if top["nodes"] >= TRACKED_SPEEDUP_MIN_NODES:
            payload["lmg_speedup"] = speedups["lmg"]
            payload["lmg_all_speedup"] = speedups["lmg-all"]
            payload["bmr_lmg_speedup"] = speedups["bmr-lmg"]
            payload["min_speedup"] = min(speedups.values())
            payload["xl_gate_5x"] = payload["min_speedup"] >= 5.0
    Path(out).write_text(json.dumps(payload, indent=1))
    print(f"wrote {out}")
    if gated and not payload["all_plans_identical"]:
        print("FAIL: incremental/rescan plan mismatch", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
