"""BMR benchmark: array kernels vs dict reference + online BMR ingest.

Two panels, both written to ``BENCH_bmr.json`` at the repository root:

1. **Kernels** — times the BMR greedy family (``bmr-lmg``,
   ``mp-local``) on natural-preset graphs of increasing size, once
   through the dict-of-dicts reference (:mod:`repro.algorithms.
   bmr_greedy`) and once through the :mod:`repro.fastgraph` array
   kernels, verifying plan identity at every point.
2. **Engine** — streams a simulated repository through
   :class:`repro.engine.IngestEngine` in ``problem="bmr"`` mode
   (per-arrival retrieval-feasible attach, staleness-bounded full BMR
   re-solves) against the rebuild-and-resolve baseline: recompile the
   whole graph and run a full BMR solve per arrival (sampled).

::

    PYTHONPATH=src python benchmarks/bench_bmr_engine.py
    PYTHONPATH=src python benchmarks/bench_bmr_engine.py --smoke

Acceptance gates: every array-kernel plan equals its dict-reference
plan, the ``bmr-lmg`` array kernel is >= 5x faster than the dict
reference at >= 2000 versions (>= 1.3x in the CI smoke run, whose
graphs are too small to amortize), the engine's post-re-solve plan
equals a from-scratch BMR solve on the final graph, and every arrival's
plan satisfies the retrieval budget.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

from repro.algorithms.bmr_greedy import bmr_lmg, mp_local
from repro.core.graph import VersionGraph
from repro.core.tolerance import within_budget
from repro.engine import IngestEngine
from repro.fastgraph import bmr_lmg_array, mp_local_array
from repro.fastgraph.compiled import CompiledGraph
from repro.gen.presets import PRESETS
from repro.vcs import random_repository, snapshot_delta_bytes_pair

REPO_ROOT = Path(__file__).resolve().parents[1]
DEFAULT_OUT = REPO_ROOT / "BENCH_bmr.json"

#: Natural preset used for kernel scaling (branch/merge history).
PRESET = "996.ICU"

FULL_SIZES = (250, 500, 1000, 2000)
SMOKE_SIZES = (100, 250)
FULL_INGEST_NODES = 2000
SMOKE_INGEST_NODES = 250
SEED = 2024
BUDGET_SPAN = 2.0  # retrieval budget = span x max single-delta retrieval
STALENESS = 0.1
ENGINE_SOLVER = "mp-local"


def _time(fn, *args) -> tuple[float, object]:
    t0 = time.perf_counter()
    out = fn(*args)
    return time.perf_counter() - t0, out


# ----------------------------------------------------------------------
# panel 1: kernels
# ----------------------------------------------------------------------
def bench_kernels(nodes: int) -> list[dict]:
    """One scaling point: both BMR greedy solvers, both backends."""
    preset = PRESETS[PRESET]
    g = preset.build(scale=nodes / preset.n_commits)
    g.compile()  # compile outside the timed region, as sweeps do
    budget = g.max_retrieval_cost() * BUDGET_SPAN

    rows = []
    for name, ref_fn, arr_fn in [
        ("bmr-lmg", bmr_lmg, bmr_lmg_array),
        ("mp-local", mp_local, mp_local_array),
    ]:
        dict_s, ref_tree = _time(ref_fn, g, budget)
        array_s, arr_tree = _time(arr_fn, g, budget)
        plans_equal = ref_tree.parent == arr_tree.parent_map()
        feasible = within_budget(arr_tree.max_retrieval(), budget)
        rows.append(
            {
                "solver": name,
                "preset": PRESET,
                "nodes": g.num_versions,
                "edges": g.num_deltas,
                "retrieval_budget": budget,
                "dict_seconds": dict_s,
                "array_seconds": array_s,
                "speedup": dict_s / array_s if array_s > 0 else float("inf"),
                "plans_identical": plans_equal,
                "budget_feasible": bool(feasible),
                "storage": arr_tree.total_storage,
                "max_retrieval": arr_tree.max_retrieval(),
            }
        )
        status = "OK" if plans_equal and feasible else "MISMATCH"
        print(
            f"{PRESET:>10} n={g.num_versions:<6} {name:<8} "
            f"dict={dict_s:8.3f}s array={array_s:8.3f}s "
            f"speedup={rows[-1]['speedup']:6.1f}x [{status}]",
            flush=True,
        )
    return rows


# ----------------------------------------------------------------------
# panel 2: online BMR ingest
# ----------------------------------------------------------------------
def prediff(repo) -> list[list[tuple]]:
    """Per-commit engine-format delta lists (diff cost paid once)."""
    out = []
    for c in repo.commits:
        deltas = []
        for p in c.parents:
            fwd, bwd = snapshot_delta_bytes_pair(
                repo.commits[p].snapshot, c.snapshot
            )
            deltas.append((p, c.id, float(fwd), float(fwd)))
            deltas.append((c.id, p, float(bwd), float(bwd)))
        out.append(deltas)
    return out


def bench_engine(nodes: int, baseline_every: int) -> dict:
    """Stream a repository online vs rebuild-and-resolve per arrival."""
    repo = random_repository(nodes, seed=SEED)
    n = repo.num_commits
    deltas_by_commit = prediff(repo)
    final_graph = VersionGraph(name="bmr-ingest-bench")
    for c in repo.commits:
        final_graph.add_version(c.id, float(c.total_bytes()))
    for deltas in deltas_by_commit:
        for u, v, s, r in deltas:
            final_graph.add_delta(u, v, s, r)
    budget = final_graph.max_retrieval_cost() * BUDGET_SPAN
    cg_final = CompiledGraph(final_graph)

    # ---- incremental path: the engine, timed per arrival -------------
    engine = IngestEngine(
        problem="bmr",
        budget=budget,
        solver=ENGINE_SOLVER,
        staleness_threshold=STALENESS,
    )
    ingest_seconds = np.empty(n)
    all_feasible = True
    for c in repo.commits:
        stats = engine.ingest_version(
            c.id, float(c.total_bytes()), deltas_by_commit[c.id]
        )
        ingest_seconds[c.id] = stats.seconds
        all_feasible &= bool(within_budget(stats.max_retrieval, budget))

    # ---- baseline: rebuild-and-resolve per arrival (sampled) ---------
    baseline_g = VersionGraph(name="baseline")
    baseline_samples = []
    for c in repo.commits:
        baseline_g.add_version(c.id, float(c.total_bytes()))
        for u, v, s, r in deltas_by_commit[c.id]:
            baseline_g.add_delta(u, v, s, r)
        if c.id % baseline_every == 0 or c.id == n - 1:
            t0 = time.perf_counter()
            cg = CompiledGraph(baseline_g)  # from-scratch recompile
            mp_local_array(cg, budget)  # full BMR re-solve
            baseline_samples.append(
                {"index": c.id, "seconds": time.perf_counter() - t0}
            )

    # ---- acceptance checks -------------------------------------------
    final_tree = engine.resolve()
    ref_tree = mp_local_array(cg_final, budget)
    plans_identical = (
        final_tree.to_plan() == ref_tree.to_plan()
        and final_tree.total_storage == ref_tree.total_storage
        and final_tree.total_retrieval == ref_tree.total_retrieval
    )

    mean_ingest = float(ingest_seconds.mean())
    mean_rebuild = float(np.mean([s["seconds"] for s in baseline_samples]))
    speedup = mean_rebuild / mean_ingest if mean_ingest > 0 else float("inf")
    print(
        f"n={n:<6} bmr-ingest={mean_ingest * 1e3:8.3f} ms/arrival "
        f"rebuild+resolve={mean_rebuild * 1e3:8.3f} ms/arrival "
        f"speedup={speedup:7.1f}x resolves={engine.resolves} "
        f"[{'OK' if plans_identical and all_feasible else 'MISMATCH'}]",
        flush=True,
    )
    return {
        "nodes": n,
        "edges": final_graph.num_deltas,
        "seed": SEED,
        "problem": "bmr",
        "solver": ENGINE_SOLVER,
        "retrieval_budget": budget,
        "staleness_threshold": STALENESS,
        "resolves": engine.resolves,
        "baseline_sampled_every": baseline_every,
        "mean_ingest_seconds": mean_ingest,
        "mean_rebuild_resolve_seconds": mean_rebuild,
        "ingest_speedup": speedup,
        "plans_identical": plans_identical,
        "all_arrivals_feasible": all_feasible,
        "final_storage": final_tree.total_storage,
        "final_max_retrieval": final_tree.max_retrieval(),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small sizes only (CI smoke run, < 60 s)",
    )
    parser.add_argument(
        "--sizes",
        type=int,
        nargs="*",
        default=None,
        help="explicit kernel-panel node counts (overrides --smoke)",
    )
    parser.add_argument("--out", default=str(DEFAULT_OUT), help="JSON output path")
    args = parser.parse_args(argv)

    sizes = args.sizes or (SMOKE_SIZES if args.smoke else FULL_SIZES)
    kernel_rows: list[dict] = []
    for nodes in sizes:
        kernel_rows.extend(bench_kernels(nodes))

    ingest_nodes = SMOKE_INGEST_NODES if args.smoke else FULL_INGEST_NODES
    engine_payload = bench_engine(ingest_nodes, 25 if args.smoke else 50)

    mismatches = [
        r
        for r in kernel_rows
        if not (r["plans_identical"] and r["budget_feasible"])
    ]
    lmg_rows = [
        r for r in kernel_rows if r["solver"] == "bmr-lmg" and r["nodes"] >= 2000
    ]
    speedup_floor = 1.3 if args.smoke else 5.0
    best_speedup = max(
        (r["speedup"] for r in kernel_rows if r["solver"] == "bmr-lmg"),
        default=0.0,
    )
    payload = {
        "preset": PRESET,
        "sizes": list(sizes),
        "smoke": args.smoke,
        "kernels": kernel_rows,
        "engine": engine_payload,
        "all_plans_identical": not mismatches and engine_payload["plans_identical"],
        "all_arrivals_feasible": engine_payload["all_arrivals_feasible"],
        "bmr_lmg_speedup_at_2000_nodes": max(
            (r["speedup"] for r in lmg_rows), default=None
        ),
        "speedup_floor": speedup_floor,
    }
    Path(args.out).write_text(json.dumps(payload, indent=1, allow_nan=False))
    print(f"wrote {args.out}")
    if mismatches:
        print(f"FAIL: {len(mismatches)} backend plan mismatches", file=sys.stderr)
        return 1
    if not engine_payload["plans_identical"]:
        print("FAIL: engine plan != from-scratch BMR solve", file=sys.stderr)
        return 1
    if not engine_payload["all_arrivals_feasible"]:
        print("FAIL: an arrival plan violated the retrieval budget", file=sys.stderr)
        return 1
    if best_speedup < speedup_floor:
        print(
            f"FAIL: bmr-lmg array speedup {best_speedup:.1f}x below the "
            f"{speedup_floor:.1f}x floor",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
