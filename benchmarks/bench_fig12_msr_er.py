"""Figure 12 — MSR on compressed Erdős–Rényi graphs (+ run times).

The ER construction destroys tree-likeness.  Paper shape: LMG's
performance degrades badly relative to LMG-All (it cannot revisit
non-auxiliary edges after the initial arborescence), DP-MSR stays
competitive despite only seeing an extracted tree, and LMG-All pays
for its edge scans on dense graphs (run-time panel).
"""

import math

import pytest

from repro.bench import ascii_plot, run_msr_experiment
from repro.gen import load_dataset

# (panel name, preset, scale) — "LeetCode (original)" is the natural
# LeetCodeAnimation graph; the complete graph runs at reduced scale to
# keep the pure-Python edge scans inside the time budget.
PANELS = [
    ("LeetCode (original)", "LeetCodeAnimation", 1.0),
    ("LeetCode (0.05)", "LeetCode (0.05)", 1.0),
    ("LeetCode (0.2)", "LeetCode (0.2)", 1.0),
    ("LeetCode (1)", "LeetCode (1)", 0.55),
]


def geomean(xs):
    xs = [max(x, 1e-12) for x in xs]
    return math.exp(sum(math.log(x) for x in xs) / len(xs))


@pytest.mark.parametrize("panel,preset,scale", PANELS)
def bench_fig12_panel(benchmark, panel, preset, scale, result_store):
    g = load_dataset(preset, scale=scale, compressed=True)

    def run():
        return run_msr_experiment(
            g, name="fig12", solvers=["lmg", "lmg-all", "dp-msr"], budgets=None
        )

    res = benchmark.pedantic(run, rounds=1, iterations=1)
    result_store[("fig12", panel)] = res
    res.save()
    print()
    print(ascii_plot(res.objective, title=f"fig12 / {panel}: retrieval vs storage"))
    print(ascii_plot(res.runtime, title=f"fig12 / {panel}: run time (s)"))

    dp = res.objective["dp-msr"]
    la = res.objective["lmg-all"]
    lm = res.objective["lmg"]

    finite = [
        (d, a, l)
        for d, a, l in zip(dp.y, la.y, lm.y)
        if all(map(math.isfinite, (d, a, l))) and min(d, a, l) > 0
    ]
    assert finite, "sweep produced no feasible points"

    # Paper shape: LMG-All beats LMG clearly on ER graphs.
    assert geomean([l / a for _, a, l in finite]) >= 0.95
    if "0.2" in panel or "(1)" in panel:
        # on denser ER graphs the gap is substantial
        assert max(l / a for _, a, l in finite) >= 1.2

    # DP-MSR (tree extraction) remains within a moderate factor of the
    # best greedy — the paper's "most information is already in a
    # spanning tree" observation.
    assert geomean([d / min(a, l) for d, a, l in finite]) <= 30.0
