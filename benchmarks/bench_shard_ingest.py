"""Sharded multi-writer ingest benchmark: throughput, tail latency, stitch.

Drives mixed arrival/retirement traffic through
:class:`repro.engine.ShardRouter` and measures the three quantities the
sharded engine exists to optimize, each in the regime where it is
honestly attributable:

* **contended throughput** — four concurrent writer threads, tenant-
  keyed routing (each writer's versions and deltas stay on one shard,
  the deployment the router is designed for).  The baseline is the
  same four writers serializing through a single engine behind one
  lock: every writer stalls behind every full re-solve of the whole
  graph, while the sharded engines re-solve quarter-size instances
  that block only their own shard (and overlap in the array kernels'
  GIL-released sections).  Gate: ``throughput_speedup`` >= 2x at four
  shards (relaxed in the smoke tier, whose graphs are too small for
  re-solve stalls to dominate), and the same comparison's p99 ingest
  latency as ``p99_latency_speedup``.
* **scale** — >= 100k versions of mixed traffic (smoke: 8k) through
  the router in pure-repair mode (``staleness_threshold=inf``), the
  regime where arrivals cost O(depth) and retirement O(depth +
  subtree).  Gate: ``p99_latency_flat`` — the last-decile p99 stays
  within ``P99_FLAT_RATIO`` of the first decile's and under
  ``P99_CEILING_MS`` absolute, i.e. per-op cost does not grow with
  the version count; every shard plan must end feasible.
* **stitch fidelity** — a deterministic sequential stream fed to both
  a single engine and the router; the cross-shard stitch must produce
  a plan *identical* to the single engine's re-solve
  (``stitch_matches_single_engine``), because the journal preserves
  the kernels' tie-breaking order.

Results go to ``BENCH_shard.json`` at the repository root::

    PYTHONPATH=src python benchmarks/bench_shard_ingest.py
    PYTHONPATH=src python benchmarks/bench_shard_ingest.py --smoke
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import threading
import time
from pathlib import Path

import numpy as np

from repro.engine import IngestEngine, ShardRouter

REPO_ROOT = Path(__file__).resolve().parents[1]
DEFAULT_OUT = REPO_ROOT / "BENCH_shard.json"

SEED = 2024
NUM_SHARDS = 4
PROBLEM = "msr"
BUDGET_FACTOR = 4.0
STALENESS = 0.1
RETIRE_EVERY = 9  # one retirement per nine arrivals (mixed traffic)

#: contended tier: versions per writer (four writers)
FULL_WRITER_VERSIONS = 1000
SMOKE_WRITER_VERSIONS = 150
#: scale tier: total versions through the router
FULL_SCALE_VERSIONS = 100_000
SMOKE_SCALE_VERSIONS = 8_000
#: stitch tier: deterministic sequential stream length
FULL_STITCH_VERSIONS = 1_000
SMOKE_STITCH_VERSIONS = 400

P99_FLAT_RATIO = 4.0  # last-decile p99 may be at most 4x the first's...
P99_FLOOR_MS = 5.0  # ...unless it is under 5 ms absolute (micro-jitter)
P99_CEILING_MS = 25.0


def make_stream(n, seed, prefix="", retire_every=RETIRE_EVERY):
    """A mixed arrival/retirement op stream with synthetic delta costs.

    ``("add", v, storage, deltas)`` / ``("retire", v)``; each arrival
    diffs against up to three earlier *live* versions of the same
    stream, and retired versions are never referenced again — the
    contract real traffic obeys.
    """
    rng = random.Random(seed)
    ops, live = [], []
    for i in range(n):
        v = f"{prefix}{i}"
        storage = float(rng.randint(80, 160))
        deltas = []
        for u in rng.sample(live, min(3, len(live))):
            s = float(rng.randint(5, 60))
            deltas.append((u, v, s, s * 1.5))
            deltas.append((v, u, s * 0.6, s * 0.9))
        ops.append(("add", v, storage, deltas))
        live.append(v)
        if retire_every and i % retire_every == retire_every - 1 and len(live) > 4:
            victim = live.pop(rng.randrange(len(live)))
            ops.append(("retire", victim))
    return ops


def apply_op(sink, op):
    if op[0] == "add":
        sink.ingest_version(op[1], op[2], op[3])
    else:
        sink.retire_version(op[1])


def tenant_key(v: str) -> int:
    """``"w2.17" -> 2``: route each writer's namespace to one shard."""
    return int(v[1:v.index(".")])


# ----------------------------------------------------------------------
# leg 1: contended multi-writer throughput
# ----------------------------------------------------------------------
def run_writers(sink, streams, lock=None):
    """Four writer threads; returns (wall_seconds, per-op latencies)."""
    lats = [[] for _ in streams]

    def writer(t):
        for op in streams[t]:
            t0 = time.perf_counter()
            if lock is not None:
                with lock:
                    apply_op(sink, op)
            else:
                apply_op(sink, op)
            lats[t].append(time.perf_counter() - t0)

    threads = [
        threading.Thread(target=writer, args=(t,)) for t in range(len(streams))
    ]
    t0 = time.perf_counter()
    for th in threads:
        th.start()
    for th in threads:
        th.join()
    wall = time.perf_counter() - t0
    return wall, np.array([x for lat in lats for x in lat])


def bench_contended(per_writer: int) -> dict:
    streams = [
        make_stream(per_writer, SEED + t, prefix=f"w{t}.")
        for t in range(NUM_SHARDS)
    ]
    total_ops = sum(len(s) for s in streams)

    single = IngestEngine(problem=PROBLEM, budget_factor=BUDGET_FACTOR,
                          staleness_threshold=STALENESS)
    single_wall, single_lat = run_writers(single, streams, lock=threading.Lock())

    with ShardRouter(
        NUM_SHARDS,
        problem=PROBLEM,
        budget_factor=BUDGET_FACTOR,
        staleness_threshold=STALENESS,
        shard_key=tenant_key,
    ) as router:
        shard_wall, shard_lat = run_writers(router, streams)
        shard_resolves = [s.resolves for s in router.shards]
        feasible = all(s.plan().is_feasible(s.graph) for s in router.shards)

    single_p99 = float(np.percentile(single_lat, 99))
    shard_p99 = float(np.percentile(shard_lat, 99))
    throughput_speedup = single_wall / shard_wall
    p99_speedup = single_p99 / shard_p99 if shard_p99 > 0 else float("inf")
    print(
        f"contended: {total_ops} ops x4 writers  "
        f"single {single_wall:6.1f}s (p99 {single_p99 * 1e3:7.1f} ms)  "
        f"sharded {shard_wall:6.1f}s (p99 {shard_p99 * 1e3:7.1f} ms)  "
        f"speedup {throughput_speedup:4.2f}x",
        flush=True,
    )
    return {
        "writers": NUM_SHARDS,
        "versions_per_writer": per_writer,
        "total_ops": total_ops,
        "single_wall_seconds": single_wall,
        "single_ops_per_second": total_ops / single_wall,
        "single_p99_seconds": single_p99,
        "single_resolves": single.resolves,
        "sharded_wall_seconds": shard_wall,
        "sharded_ops_per_second": total_ops / shard_wall,
        "sharded_p99_seconds": shard_p99,
        "sharded_resolves": shard_resolves,
        "all_shard_plans_feasible": feasible,
        "throughput_speedup": throughput_speedup,
        "p99_latency_speedup": p99_speedup,
    }


# ----------------------------------------------------------------------
# leg 2: scale (>= 100k versions, pure repair)
# ----------------------------------------------------------------------
def bench_scale(versions: int) -> dict:
    # round-robin interleave four tenant streams so every shard grows
    # evenly, like four steady writers observed from the router
    per = versions // NUM_SHARDS
    streams = [
        make_stream(per, SEED + 10 + t, prefix=f"w{t}.")
        for t in range(NUM_SHARDS)
    ]
    ops = [
        s[i] for i in range(max(map(len, streams))) for s in streams
        if i < len(s)
    ]
    router = ShardRouter(
        NUM_SHARDS,
        problem=PROBLEM,
        budget_factor=BUDGET_FACTOR,
        staleness_threshold=float("inf"),  # pure repair: the O(depth) path
        shard_key=tenant_key,
    )
    lat = np.empty(len(ops))
    t0 = time.perf_counter()
    for k, op in enumerate(ops):
        s0 = time.perf_counter()
        apply_op(router, op)
        lat[k] = time.perf_counter() - s0
    wall = time.perf_counter() - t0
    feasible = all(s.plan().is_feasible(s.graph) for s in router.shards)

    decile = max(1, len(ops) // 10)
    p99_first = float(np.percentile(lat[:decile], 99))
    p99_last = float(np.percentile(lat[-decile:], 99))
    p99_all = float(np.percentile(lat, 99))
    p99_flat = (
        p99_last <= max(P99_FLAT_RATIO * p99_first, P99_FLOOR_MS / 1e3)
        and p99_all <= P99_CEILING_MS / 1e3
    )
    print(
        f"scale:     {len(ops)} ops -> {sum(s.graph.num_versions for s in router.shards)} "
        f"live versions in {wall:5.1f}s ({len(ops) / wall:6.0f} ops/s)  "
        f"p99 first/last decile {p99_first * 1e3:5.2f}/{p99_last * 1e3:5.2f} ms "
        f"[{'flat' if p99_flat else 'GROWING'}]",
        flush=True,
    )
    return {
        "versions": versions,
        "total_ops": len(ops),
        "wall_seconds": wall,
        "ops_per_second": len(ops) / wall,
        "p99_first_decile_seconds": p99_first,
        "p99_last_decile_seconds": p99_last,
        "p99_seconds": p99_all,
        "p99_flat_ratio": P99_FLAT_RATIO,
        "p99_floor_ms": P99_FLOOR_MS,
        "p99_ceiling_ms": P99_CEILING_MS,
        "live_versions": sum(s.graph.num_versions for s in router.shards),
        "shard_resolves": [s.resolves for s in router.shards],
        "all_shard_plans_feasible": feasible,
        "p99_latency_flat": p99_flat,
    }


# ----------------------------------------------------------------------
# leg 3: stitch fidelity vs a single engine
# ----------------------------------------------------------------------
def bench_stitch(versions: int) -> dict:
    ops = make_stream(versions, SEED + 99, prefix="w0.")
    single = IngestEngine(problem=PROBLEM, budget_factor=BUDGET_FACTOR,
                          staleness_threshold=STALENESS)
    for op in ops:
        apply_op(single, op)
    ref_tree = single.resolve()
    ref_plan = ref_tree.to_plan()
    ref_obj = single.spec.tree_objective(ref_tree)

    with ShardRouter(
        NUM_SHARDS,
        problem=PROBLEM,
        budget_factor=BUDGET_FACTOR,
        staleness_threshold=STALENESS,
    ) as router:  # default CRC32 routing: deltas cross shards freely
        for op in ops:
            apply_op(router, op)
        t0 = time.perf_counter()
        plan = router.stitch()
        stitch_seconds = time.perf_counter() - t0
    matches = plan == ref_plan
    print(
        f"stitch:    {len(ops)} ops, stitch {stitch_seconds * 1e3:6.1f} ms, "
        f"objective {router.stitched_objective:.1f} vs single {ref_obj:.1f} "
        f"[{'IDENTICAL' if matches else 'MISMATCH'}]",
        flush=True,
    )
    return {
        "versions": versions,
        "total_ops": len(ops),
        "stitch_seconds": stitch_seconds,
        "stitched_objective": router.stitched_objective,
        "single_engine_objective": ref_obj,
        "stitch_matches_single_engine": matches,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small sizes only (CI smoke run, < 60 s)",
    )
    parser.add_argument("--out", default=str(DEFAULT_OUT), help="JSON output path")
    args = parser.parse_args(argv)

    per_writer = SMOKE_WRITER_VERSIONS if args.smoke else FULL_WRITER_VERSIONS
    scale_versions = SMOKE_SCALE_VERSIONS if args.smoke else FULL_SCALE_VERSIONS
    stitch_versions = SMOKE_STITCH_VERSIONS if args.smoke else FULL_STITCH_VERSIONS

    contended = bench_contended(per_writer)
    scale = bench_scale(scale_versions)
    stitch = bench_stitch(stitch_versions)

    payload = {
        "seed": SEED,
        "num_shards": NUM_SHARDS,
        "problem": PROBLEM,
        "budget_factor": BUDGET_FACTOR,
        "staleness_threshold": STALENESS,
        "retire_every": RETIRE_EVERY,
        "smoke": args.smoke,
        "contended": contended,
        "scale": scale,
        "stitch": stitch,
        # top-level gate metrics (tracked by repro.bench.check)
        "throughput_speedup": contended["throughput_speedup"],
        "p99_latency_speedup": contended["p99_latency_speedup"],
        "p99_latency_flat": scale["p99_latency_flat"],
        "stitch_matches_single_engine": stitch["stitch_matches_single_engine"],
        "all_shard_plans_feasible": (
            contended["all_shard_plans_feasible"]
            and scale["all_shard_plans_feasible"]
        ),
        # the full tier must clear 2x; smoke graphs are too small for
        # re-solve stalls to dominate, so the smoke floor only catches
        # collapses (the committed smoke baseline gates the rest)
        "throughput_floor": 1.1 if args.smoke else 2.0,
    }
    Path(args.out).write_text(json.dumps(payload, indent=1, allow_nan=False))
    print(f"wrote {args.out}")

    failures = []
    if payload["throughput_speedup"] < payload["throughput_floor"]:
        failures.append(
            f"throughput speedup {payload['throughput_speedup']:.2f}x below "
            f"the {payload['throughput_floor']:.1f}x floor"
        )
    for key in (
        "p99_latency_flat",
        "stitch_matches_single_engine",
        "all_shard_plans_feasible",
    ):
        if not payload[key]:
            failures.append(f"{key} is False")
    for msg in failures:
        print(f"FAIL: {msg}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
