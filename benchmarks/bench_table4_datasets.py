"""Table 4 — dataset overview (generation cost + statistics vs paper).

Regenerates the "#nodes / #edges / avg cost s_v / avg cost s_e" table
for every emulated repository and asserts our synthetic graphs land in
the paper's ballpark (same node counts at scale 1, cost magnitudes
within a small factor, ER edge counts tracking n(n-1)p).
"""

import pytest

from repro.bench import table4
from repro.gen import TABLE4_PAPER, load_dataset


def bench_table4_report(benchmark):
    rows = benchmark.pedantic(table4, kwargs={"verbose": True}, rounds=1, iterations=1)
    assert len(rows) == len(TABLE4_PAPER)


@pytest.mark.parametrize("name", ["datasharing", "LeetCodeAnimation", "LeetCode (1)"])
def bench_full_scale_statistics_match_paper(benchmark, name):
    g = benchmark.pedantic(load_dataset, args=(name, 1.0), rounds=1, iterations=1)
    n, e, sv, se = TABLE4_PAPER[name]
    assert g.num_versions == n
    assert abs(g.num_deltas - e) / e < 0.25
    assert 0.2 * sv <= g.average_version_storage() <= 5 * sv
    assert 0.2 * se <= g.average_delta_storage() <= 5 * se


def bench_build_datasharing(benchmark):
    g = benchmark(load_dataset, "datasharing", 1.0)
    assert g.num_versions == 29
