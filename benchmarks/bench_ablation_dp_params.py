"""Section-6.2 ablation — DP-MSR's discretization and pruning knobs.

The paper's practical DP replaces the FPTAS's exact machinery with
(1) storage-axis discretization, (2) geometric ticks, (3) pruning, and
reports "comparable results but significantly improved run time".  We
quantify that on the styleguide preset: solution quality as a function
of the tick budget, and the run-time/quality effect of the pruning cap.
"""

import math
import time

import numpy as np

from repro.algorithms.dp_bmr import extract_index
from repro.algorithms.dp_msr import DPMSRSolver
from repro.bench import markdown_table
from repro.bench.harness import msr_budget_grid

TICK_GRID = [8, 32, 128]


def bench_tick_budget_quality(benchmark, dataset_cache):
    g = dataset_cache("styleguide")
    index = extract_index(g)
    budgets = msr_budget_grid(g, points=5)

    def run():
        out = {}
        for ticks in TICK_GRID:
            t0 = time.perf_counter()
            f = DPMSRSolver(g, index=index, ticks=ticks).frontier()
            dt = time.perf_counter() - t0
            out[ticks] = (dt, [f.best_retrieval_within(b) for b in budgets])
        return out

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [ticks, f"{dt:.3f}s"] + vals for ticks, (dt, vals) in out.items()
    ]
    print()
    print(
        markdown_table(
            ["ticks", "dp time"] + [f"S={b:.3g}" for b in budgets], rows
        )
    )
    # more ticks -> no worse retrieval at every budget (small tolerance
    # because bucket boundaries shift)
    lo, hi = out[TICK_GRID[0]][1], out[TICK_GRID[-1]][1]
    for a, b in zip(lo, hi):
        if math.isfinite(a) and math.isfinite(b):
            assert b <= a * 1.05 + 1e-9


def bench_pruning_cap(benchmark, dataset_cache):
    """Pruning at 2x min storage (the paper's uncompressed setting)."""
    g = dataset_cache("styleguide")
    index = extract_index(g)
    budgets = msr_budget_grid(g, points=4, span=1.9)

    def run():
        t0 = time.perf_counter()
        full = DPMSRSolver(g, index=index, ticks=96).frontier()
        t_full = time.perf_counter() - t0
        cap = budgets[-1]
        t0 = time.perf_counter()
        pruned = DPMSRSolver(g, index=index, ticks=96, storage_cap=cap).frontier()
        t_pruned = time.perf_counter() - t0
        return full, t_full, pruned, t_pruned

    full, t_full, pruned, t_pruned = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nfull DP: {t_full:.3f}s ({len(full)} pts); pruned: {t_pruned:.3f}s ({len(pruned)} pts)")
    # pruning keeps quality inside the cap region (same thinning budget,
    # so small bucket-boundary wiggles are allowed)
    for b in budgets:
        a = full.best_retrieval_within(b)
        p = pruned.best_retrieval_within(b)
        if math.isfinite(a) and a > 0:
            assert p <= a * 1.1 + 1e-9
    # and never takes meaningfully longer
    assert t_pruned <= t_full * 1.5 + 0.5
