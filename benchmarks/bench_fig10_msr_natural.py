"""Figure 10 — MSR on natural version graphs.

Paper shape to reproduce: ``DP-MSR <= LMG-All <= LMG`` in total
retrieval across storage budgets, with DP-MSR near OPT (ILP) on
datasharing and the gap widening on larger graphs, especially at tight
budgets.  Run times are collected per solver (DP-MSR is one run for the
whole budget range).
"""

import math

import numpy as np
import pytest

from repro.bench import ascii_plot, run_msr_experiment
from repro.bench.harness import msr_budget_grid
from repro.algorithms import lmg, lmg_all
from repro.algorithms.dp_msr import DPMSRSolver

DATASETS = ["datasharing", "styleguide", "996.ICU", "freeCodeCamp"]


def geomean(xs):
    xs = [max(x, 1e-12) for x in xs]
    return math.exp(sum(math.log(x) for x in xs) / len(xs))


@pytest.mark.parametrize("dataset", DATASETS)
def bench_fig10_panel(benchmark, dataset, dataset_cache, result_store):
    g = dataset_cache(dataset)

    def run():
        return run_msr_experiment(
            g,
            name="fig10",
            solvers=["lmg", "lmg-all", "dp-msr"],
            include_ilp=(dataset == "datasharing"),
        )

    res = benchmark.pedantic(run, rounds=1, iterations=1)
    result_store[("fig10", dataset)] = res
    res.save()
    print()
    print(ascii_plot(res.objective, title=f"fig10 / {dataset}: retrieval vs storage"))
    print(ascii_plot(res.runtime, title=f"fig10 / {dataset}: run time (s)"))

    dp = res.objective["dp-msr"]
    la = res.objective["lmg-all"]
    lm = res.objective["lmg"]

    # Paper shape 1: DP-MSR dominates LMG overall (geometric mean).
    ratios_lmg = [
        l / d for d, l in zip(dp.y, lm.y) if math.isfinite(l) and math.isfinite(d) and d > 0
    ]
    assert geomean(ratios_lmg) >= 0.95, "DP-MSR should not lose to LMG on natural graphs"

    # Paper shape 2: LMG-All never (meaningfully) loses to LMG.
    ratios = [
        l / a for a, l in zip(la.y, lm.y) if math.isfinite(l) and math.isfinite(a) and a > 0
    ]
    assert geomean(ratios) >= 0.9

    # Paper shape 3: every curve is non-increasing in the budget.
    for s in (dp, la, lm):
        ys = [y for y in s.y if math.isfinite(y)]
        assert all(a >= b - max(1e-9, 1e-9 * abs(a)) for a, b in zip(ys, ys[1:]))

    if dataset == "datasharing":
        opt = res.objective["opt-ilp"]
        for d, o in zip(dp.y, opt.y):
            if math.isfinite(o) and o > 0:
                assert d <= o * 1.3 + 1e-6, "DP-MSR should track OPT on datasharing"


def bench_fig10_lmg_single_budget(benchmark, dataset_cache):
    g = dataset_cache("styleguide")
    budget = msr_budget_grid(g)[3]
    benchmark(lambda: lmg(g, budget))


def bench_fig10_lmg_all_single_budget(benchmark, dataset_cache):
    g = dataset_cache("styleguide")
    budget = msr_budget_grid(g)[3]
    benchmark(lambda: lmg_all(g, budget))


def bench_fig10_dp_msr_full_frontier(benchmark, dataset_cache):
    g = dataset_cache("styleguide")
    benchmark.pedantic(
        lambda: DPMSRSolver(g, ticks=96).frontier(), rounds=1, iterations=2
    )
