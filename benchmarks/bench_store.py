"""Materialization-store benchmark: dedup, checkout latency, migration cost.

Solves a seeded random repository under two MSR storage budgets, executes
the first plan against a content-addressed store, and measures the three
quantities the store exists to optimize:

* **dedup ratio** — bytes stored (content-addressed blobs + manifests +
  deltas) vs the sum of raw snapshot bytes the plan's materialized rows
  would cost without sharing;
* **checkout latency vs chain depth** — per-version reconstruction time
  bucketed by delta-chain length, the retrieval-cost proxy the paper's
  objectives optimize;
* **migration cost vs full rematerialization** — wall-clock for
  ``migrate(plan_a, plan_b)`` (rewrites only the tree diff) vs
  materializing ``plan_b`` from scratch, plus the op-counter identity
  ``edges_rewritten == |edge_set(a) ^ edge_set(b)|``;
* **checkout LRU cache** — repeated checkouts of the deepest-chain
  working set, cached store vs ``checkout_cache=0``: the cache serves
  repeats from memory and cuts cold chains at cached ancestors
  (``checkout_cache_speedup``), returning identical bytes.

Results go to ``BENCH_store.json`` at the repository root::

    PYTHONPATH=src python benchmarks/bench_store.py
    PYTHONPATH=src python benchmarks/bench_store.py --smoke

Acceptance gates (all deterministic booleans, committed in the smoke
baseline): every checkout byte-identical, dedup engaged, fsck clean,
migration object-for-object equal to a from-scratch build, migration
touches only the tree diff.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from collections import defaultdict
from pathlib import Path

from repro.algorithms.registry import get_solver
from repro.fastgraph import ArrayPlanTree, CompiledGraph
from repro.fastgraph.arborescence import min_storage_parent_edges
from repro.store import MaterializationStore, materialize, plan_parent_map
from repro.vcs import build_graph_from_repo, random_repository

REPO_ROOT = Path(__file__).resolve().parents[1]
DEFAULT_OUT = REPO_ROOT / "BENCH_store.json"

FULL_NODES = 600
SMOKE_NODES = 120
SEED = 2024
#: below this size the cache panel's warm pass is micro-second scale
#: and the ratio is CI noise — the top-level tracked key is withheld
#: (the nested panel always carries it), like bench_scaling_xl.py
TRACKED_SPEEDUP_MIN_NODES = 300
# Two storage budgets around the same instance: plan A is the standing
# store, plan B the re-solve target the migration benchmark moves to.
SPAN_A = 2.0
SPAN_B = 3.0


def edge_set(plan):
    return {(p, v) for v, p in plan_parent_map(plan).items()}


def stores_equal(a, b) -> bool:
    """Object-for-object equality (records, digests, object bytes)."""
    if a.edge_set() != b.edge_set():
        return False
    if any(a.digest(v) != b.digest(v) for v in a.versions):
        return False
    a_keys, b_keys = set(a.objects.keys()), set(b.objects.keys())
    if a_keys != b_keys:
        return False
    return all(a.objects.get(k) == b.objects.get(k) for k in a_keys)


def bench_store(nodes: int) -> dict:
    repo = random_repository(nodes, seed=SEED)
    n = repo.num_commits
    graph = build_graph_from_repo(repo)
    cg = CompiledGraph(graph)
    min_storage = ArrayPlanTree(cg, min_storage_parent_edges(cg)).total_storage
    solve = get_solver("msr", "lmg")
    plan_a = solve(graph, SPAN_A * min_storage)
    plan_b = solve(graph, SPAN_B * min_storage)
    assert plan_a is not None and plan_b is not None

    # ---- materialize + dedup ratio -----------------------------------
    t0 = time.perf_counter()
    store = materialize(repo, plan_a)
    materialize_seconds = time.perf_counter() - t0
    raw_bytes = sum(c.total_bytes() for c in repo.commits)
    stored_bytes = store.total_bytes()
    dedup_ratio = raw_bytes / stored_bytes if stored_bytes else float("inf")

    # ---- checkout latency vs chain depth -----------------------------
    # measured on a cache-less store: the panel is the *replay* cost the
    # retrieval objective models, not the (cache-flattened) served cost
    cold_store = MaterializationStore(checkout_cache=0)
    cold_store.materialize(repo, plan_a)
    snapshots = {c.id: c.snapshot for c in repo.commits}
    by_depth: dict[int, list[float]] = defaultdict(list)
    roundtrip_identical = True
    for v in cold_store.versions:
        t0 = time.perf_counter()
        snap = cold_store.checkout(v)
        by_depth[cold_store.chain_depth(v)].append(time.perf_counter() - t0)
        if snap != snapshots[v]:
            roundtrip_identical = False
    checkout_by_depth = [
        {
            "depth": depth,
            "count": len(times),
            "mean_seconds": sum(times) / len(times),
        }
        for depth, times in sorted(by_depth.items())
    ]
    fsck_clean = store.fsck() == []

    # ---- checkout LRU cache: warm working set vs cache-less ----------
    # the access pattern the cache exists for: a reviewer bouncing
    # between the deepest (most replay-expensive) versions
    working_set = sorted(
        store.versions, key=store.chain_depth, reverse=True
    )[:12]
    rounds = 5
    cache_checkouts_identical = True
    t0 = time.perf_counter()
    for _ in range(rounds):
        for v in working_set:
            if store.checkout(v) != snapshots[v]:
                cache_checkouts_identical = False
    warm_seconds = time.perf_counter() - t0
    t0 = time.perf_counter()
    for _ in range(rounds):
        for v in working_set:
            if cold_store.checkout(v) != snapshots[v]:
                cache_checkouts_identical = False
    cacheless_seconds = time.perf_counter() - t0
    checkout_cache_speedup = (
        cacheless_seconds / warm_seconds if warm_seconds else float("inf")
    )

    # ---- migration vs full rematerialization -------------------------
    migrating = materialize(repo, plan_a)
    t0 = time.perf_counter()
    report = migrating.migrate(plan_a, plan_b)
    migrate_seconds = time.perf_counter() - t0
    t0 = time.perf_counter()
    scratch = materialize(repo, plan_b)
    scratch_seconds = time.perf_counter() - t0
    symdiff = len(edge_set(plan_a) ^ edge_set(plan_b))
    migration_matches_scratch = stores_equal(migrating, scratch)
    migration_touches_only_diff = report.edges_rewritten == symdiff
    migration_cost_ratio = (
        migrate_seconds / scratch_seconds if scratch_seconds else float("inf")
    )

    ok = (
        roundtrip_identical
        and fsck_clean
        and stored_bytes <= raw_bytes
        and migration_matches_scratch
        and migration_touches_only_diff
        and cache_checkouts_identical
    )
    print(
        f"n={n:<6} dedup={dedup_ratio:6.2f}x "
        f"cache={checkout_cache_speedup:5.1f}x "
        f"materialize={materialize_seconds * 1e3:8.1f} ms "
        f"migrate={migrate_seconds * 1e3:7.1f} ms "
        f"scratch={scratch_seconds * 1e3:7.1f} ms "
        f"rewritten={report.edges_rewritten}/{symdiff} "
        f"[{'OK' if ok else 'MISMATCH'}]",
        flush=True,
    )
    return {
        "nodes": n,
        "seed": SEED,
        "solver": "lmg",
        "span_a": SPAN_A,
        "span_b": SPAN_B,
        "budget_a": SPAN_A * min_storage,
        "budget_b": SPAN_B * min_storage,
        "raw_bytes": raw_bytes,
        "stored_bytes": stored_bytes,
        "dedup_ratio": dedup_ratio,
        "materialize_seconds": materialize_seconds,
        "objects": store.objects.count(),
        "max_chain_depth": max(store.chain_depth(v) for v in store.versions),
        "checkout_by_depth": checkout_by_depth,
        "migration": {
            "edges_written": report.edges_written,
            "edges_deleted": report.edges_deleted,
            "edges_rewritten": report.edges_rewritten,
            "edge_symdiff": symdiff,
            "objects_written": report.objects_written,
            "objects_deleted": report.objects_deleted,
            "migrate_seconds": migrate_seconds,
            "scratch_seconds": scratch_seconds,
        },
        "migration_cost_ratio": migration_cost_ratio,
        "checkout_cache": {
            "working_set": len(working_set),
            "rounds": rounds,
            "warm_seconds": warm_seconds,
            "cacheless_seconds": cacheless_seconds,
            "speedup": checkout_cache_speedup,
        },
        **(
            {"checkout_cache_speedup": checkout_cache_speedup}
            if n >= TRACKED_SPEEDUP_MIN_NODES
            else {}
        ),
        "cache_checkouts_identical": cache_checkouts_identical,
        "roundtrip_identical": roundtrip_identical,
        "dedup_engaged": stored_bytes <= raw_bytes,
        "fsck_clean": fsck_clean,
        "migration_matches_scratch": migration_matches_scratch,
        "migration_touches_only_diff": migration_touches_only_diff,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small size only (CI smoke run, < 60 s)",
    )
    parser.add_argument("--nodes", type=int, default=None, help="explicit node count")
    parser.add_argument("--out", default=str(DEFAULT_OUT), help="JSON output path")
    args = parser.parse_args(argv)

    nodes = args.nodes or (SMOKE_NODES if args.smoke else FULL_NODES)
    payload = bench_store(nodes)
    payload["smoke"] = args.smoke

    Path(args.out).write_text(json.dumps(payload, indent=1, allow_nan=False))
    print(f"wrote {args.out}")
    failures = [
        key
        for key in (
            "roundtrip_identical",
            "dedup_engaged",
            "fsck_clean",
            "migration_matches_scratch",
            "migration_touches_only_diff",
            "cache_checkouts_identical",
        )
        if not payload[key]
    ]
    for key in failures:
        print(f"FAIL: {key} is False", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
