#!/usr/bin/env python
"""ML-pipeline dataset versioning under a retrieval SLA (BMR).

Deep-learning pipelines derive many dataset variants from one original
(cleaning, augmentations, tokenizations, train/val splits), forming a
shallow, bushy version tree.  Serving a training job must never wait
more than an SLA's worth of delta replay, so the right problem is
**BoundedMax Retrieval**: minimize storage subject to
``max_v R(v) <= R``.

The example builds such a derivation tree, sweeps the SLA, and compares
the prior heuristic (MP) with the paper's DP-BMR, plus the exact ILP on
this small instance.

Run:  python examples/ml_pipeline_versions.py
"""

import numpy as np

from repro.core import VersionGraph, evaluate_plan
from repro.algorithms import bmr_ilp, dp_bmr_heuristic, mp

MB = 1024**2


def build_pipeline_graph(seed: int = 11) -> VersionGraph:
    """Root corpus -> 4 cleaning variants -> augmentations -> splits."""
    rng = np.random.default_rng(seed)
    g = VersionGraph(name="ml-pipeline")
    g.add_version("raw", 2000 * MB)

    def derive(parent: str, child: str, frac: float) -> None:
        """Child differs from parent by ~frac of its content."""
        parent_size = g.storage_cost(parent)
        size = parent_size * float(rng.uniform(0.9, 1.1))
        g.add_version(child, round(size))
        fwd = round(size * frac * float(rng.uniform(0.8, 1.25)))
        bwd = round(fwd * float(rng.uniform(0.5, 1.0)))
        g.add_delta(parent, child, fwd, fwd)
        g.add_delta(child, parent, bwd, bwd)

    for i in range(4):
        derive("raw", f"clean-{i}", 0.08)
        for j in range(3):
            derive(f"clean-{i}", f"aug-{i}.{j}", 0.25)
            derive(f"aug-{i}.{j}", f"train-{i}.{j}", 0.05)
            derive(f"aug-{i}.{j}", f"val-{i}.{j}", 0.04)
    return g


def main() -> None:
    g = build_pipeline_graph()
    naive = g.total_version_storage()
    print(f"{g.num_versions} dataset versions, naive storage {naive / MB:.0f} MB\n")

    print(f"{'SLA (MB replay)':>16} {'MP (MB)':>10} {'DP-BMR (MB)':>12} {'OPT (MB)':>10}")
    slas = [0, 100 * MB, 300 * MB, 900 * MB, 2700 * MB]
    for sla in slas:
        mp_plan = mp(g, sla).to_plan()
        dp_plan = dp_bmr_heuristic(g, sla).plan
        opt = bmr_ilp(g, sla, time_limit=20)
        row = [
            evaluate_plan(g, mp_plan).storage,
            evaluate_plan(g, dp_plan).storage,
            opt.score.storage if opt.score else float("nan"),
        ]
        print(
            f"{sla / MB:>16.0f} {row[0] / MB:>10.0f} {row[1] / MB:>12.0f} {row[2] / MB:>10.0f}"
        )

    sla = 300 * MB
    plan = dp_bmr_heuristic(g, sla).plan
    print(f"\nDP-BMR plan at SLA {sla / MB:.0f} MB keeps these versions materialized:")
    for v in sorted(map(str, plan.materialized)):
        print(f"  - {v}")
    score = evaluate_plan(g, plan)
    print(f"storage {score.storage / MB:.0f} MB "
          f"({100 * score.storage / naive:.1f}% of naive), "
          f"worst replay {score.max_retrieval / MB:.0f} MB")


if __name__ == "__main__":
    main()
