#!/usr/bin/env python
"""Theorem 1, live: watch LMG's greedy ratio walk into the trap.

The paper's Figure-2 chain ``A -> B -> C`` (single weight function,
triangle inequality, a directed path!) defeats LMG: the first greedy
step's ratio prefers materializing B (rho = 2/eps - 1) over C
(rho = 1/eps - eps), after which the budget cannot accommodate C —
leaving total retrieval (1-eps)c instead of the optimal (1-eps)b.
The gap c/b is unbounded.

The script prints the greedy ledger for growing c/b and shows DP-MSR /
brute force recovering the optimum every time.

Run:  python examples/adversarial_lmg.py
"""

from repro.core import MSR
from repro.core.instances import lmg_adversarial_chain
from repro.algorithms import brute_force_solve, dp_msr, lmg


def main() -> None:
    b = 100.0
    print(f"{'c/b':>8} {'LMG picks':>10} {'LMG retrieval':>14} "
          f"{'OPT retrieval':>14} {'DP-MSR':>10} {'gap':>8}")
    for c in (1e3, 1e4, 1e5, 1e6):
        g = lmg_adversarial_chain(a=c, b=b, c=c)
        eps = b / c
        budget = c + (1 - eps) * b + c

        tree = lmg(g, budget)
        picked = ",".join(sorted(map(str, tree.materialized_versions())))
        r_lmg = tree.total_retrieval

        opt_plan, opt_score = brute_force_solve(g, MSR(budget))
        r_dp = dp_msr(g, budget, ticks=None).score.sum_retrieval

        print(
            f"{c / b:>8.0f} {picked:>10} {r_lmg:>14.1f} "
            f"{opt_score.sum_retrieval:>14.1f} {r_dp:>10.1f} "
            f"{r_lmg / opt_score.sum_retrieval:>8.1f}x"
        )
    print("\nLMG's gap grows linearly in c/b — Theorem 1. DP-MSR is exact here.")


if __name__ == "__main__":
    main()
