#!/usr/bin/env python
"""Quickstart: the paper's Figure-1 graph, solved every way.

Builds the 5-version example from the paper, then answers the question
the library exists for — *which versions should be stored in full?* —
with each solver family:

* baselines (minimum-storage arborescence, shortest-path tree),
* greedy heuristics (LMG, LMG-All),
* the DP frontier (DP-MSR) and the exact ILP,
* a BMR plan under a max-retrieval SLA.

Run:  python examples/quickstart.py
"""

from repro.core import MSR, evaluate_plan
from repro.core.instances import figure1_graph
from repro.algorithms import (
    dp_msr,
    dp_bmr_heuristic,
    lmg,
    lmg_all,
    min_storage_plan_tree,
    msr_ilp,
    shortest_path_plan_tree,
)


def show(name: str, plan, graph) -> None:
    score = evaluate_plan(graph, plan)
    mats = ", ".join(sorted(map(str, plan.materialized)))
    print(
        f"{name:<22} storage={score.storage:>8.0f}  "
        f"sum_retrieval={score.sum_retrieval:>7.0f}  "
        f"max_retrieval={score.max_retrieval:>6.0f}  materialized=[{mats}]"
    )


def main() -> None:
    g = figure1_graph()
    print(f"Version graph: {g}")
    print(f"Storing everything costs {g.total_version_storage():.0f} bytes;")
    base = min_storage_plan_tree(g)
    print(f"the minimum-storage plan costs {base.total_storage:.0f} bytes "
          f"but needs {base.total_retrieval:.0f} bytes of delta replay.\n")

    budget = 21_000  # the sweet spot between the two extremes
    print(f"--- MSR: minimize total retrieval under storage <= {budget} ---")
    show("min-storage", base.to_plan(), g)
    show("shortest-path tree", shortest_path_plan_tree(g).to_plan(), g)
    show("LMG", lmg(g, budget).to_plan(), g)
    show("LMG-All", lmg_all(g, budget).to_plan(), g)
    res = dp_msr(g, budget, ticks=None)
    show("DP-MSR", res.plan, g)
    ilp = msr_ilp(g, budget)
    show("OPT (ILP)", ilp.plan, g)
    MSR(budget).check(g, res.plan)  # feasibility assertion

    print("\nDP-MSR's single run yields the whole trade-off curve:")
    for sto, ret in res.frontier.points():
        print(f"  storage <= {sto:>7.0f}  ->  best total retrieval {ret:>7.0f}")

    sla = 600
    print(f"\n--- BMR: minimize storage under max retrieval <= {sla} ---")
    bmr = dp_bmr_heuristic(g, sla)
    show(f"DP-BMR (R<={sla})", bmr.plan, g)


if __name__ == "__main__":
    main()
