#!/usr/bin/env python
"""Retrieval-budget serving: online BMR ingest, end to end.

The operational scenario from OrpheusDB / Bhattacherjee et al.: a
versioned dataset serves reads, so what matters is not total storage
alone but the **worst-case reconstruction cost of any version** — a
retrieval SLA.  This walkthrough:

1. simulates a repository (real file contents, byte-accurate Myers
   delta costs) and picks a max-retrieval budget;
2. streams its commits through :class:`repro.engine.IngestEngine` in
   ``problem="bmr"`` mode — each arrival attaches through the cheapest
   delta that keeps its own retrieval within budget (materialization
   as the always-feasible fallback), and a staleness bound on attach
   storage triggers full BMR re-solves;
3. verifies the standing guarantees: every intermediate plan respects
   the SLA, and the final re-solved plan equals a from-scratch
   ``mp-local`` solve on the final graph;
4. compares the batch BMR solvers on the final graph for context.

Run:  python examples/retrieval_budget_serving.py [commits] [seed]
"""

import sys

from repro.algorithms.registry import get_solver
from repro.core.problems import evaluate_plan
from repro.core.tolerance import within_budget, within_budget_recomputed
from repro.engine import IngestEngine
from repro.fastgraph import mp_local_array
from repro.vcs import build_graph_from_repo, random_repository


def main(commits: int = 120, seed: int = 7) -> None:
    """Stream ``commits`` simulated commits under a retrieval SLA."""
    repo = random_repository(commits, seed=seed, branch_prob=0.15, merge_prob=0.08)
    batch = build_graph_from_repo(repo)
    sla = batch.max_retrieval_cost() * 2.0
    print(f"Repository: {repo.num_commits} commits -> {batch}")
    print(f"Max-retrieval SLA: {sla:.0f} bytes of delta replay per version\n")

    engine = IngestEngine(
        problem="bmr", budget=sla, solver="mp-local", staleness_threshold=0.05
    )
    worst = 0.0
    for stats in engine.ingest_repository(repo):
        assert within_budget(stats.max_retrieval, sla), "SLA violated mid-stream"
        worst = max(worst, stats.max_retrieval)
        if stats.resolved or stats.index == repo.num_commits - 1:
            print(
                f"  arrival {stats.index:>4}  storage={stats.storage:>9.0f}  "
                f"max_retrieval={stats.max_retrieval:>7.0f}  "
                f"staleness={stats.staleness:.3f}  "
                f"{'re-solved' if stats.resolved else 'attached'}"
            )
    print(
        f"\n{engine.resolves} full re-solves over {repo.num_commits} arrivals; "
        f"worst per-arrival max retrieval {worst:.0f} <= SLA {sla:.0f}"
    )

    # the standing guarantee: after a re-solve the engine's plan equals
    # a from-scratch BMR solve on the final graph
    final = engine.resolve()
    reference = mp_local_array(batch.compile(), sla)
    assert final.to_plan() == reference.to_plan()
    print("post-re-solve plan == from-scratch mp-local solve on the final graph")

    print(f"\n--- batch BMR solvers on the final graph (SLA {sla:.0f}) ---")
    for name in ("mp", "mp-local", "bmr-lmg", "dp-bmr"):
        plan = get_solver("bmr", name)(batch, sla)
        score = evaluate_plan(batch, plan)
        assert within_budget_recomputed(score.max_retrieval, sla)
        marker = " <- engine solver" if name == "mp-local" else ""
        print(
            f"  {name:<8} storage={score.storage:>9.0f}  "
            f"max_retrieval={score.max_retrieval:>7.0f}{marker}"
        )
    mats = len(final.materialized_versions())
    print(
        f"\nServing plan: {mats} of {repo.num_commits} versions materialized, "
        f"{final.total_storage:.0f} bytes stored."
    )


if __name__ == "__main__":
    main(*map(int, sys.argv[1:3]))
