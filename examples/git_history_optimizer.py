#!/usr/bin/env python
"""End-to-end pipeline: simulated git history -> optimized storage plan.

This is the paper's Section-7.1 workflow on our content-backed VCS
substrate:

1. simulate a repository (commits, branches, merges, real file edits);
2. derive the natural version graph — each commit is a node costing its
   size in bytes, each parent/child link a bidirectional Myers-diff
   delta;
3. decide which commits a hosting service should store in full given a
   storage budget (MSR, via LMG-All and DP-MSR) or a retrieval SLA
   (BMR, via DP-BMR);
4. print the resulting materialization schedule.

Run:  python examples/git_history_optimizer.py [n_commits] [seed]
"""

import sys

from repro.core import evaluate_plan
from repro.algorithms import dp_bmr_heuristic, dp_msr, lmg_all, min_storage_plan_tree
from repro.vcs import build_graph_from_repo, random_repository


def main(n_commits: int = 60, seed: int = 7) -> None:
    print(f"Simulating a repository with ~{n_commits} commits (seed {seed})...")
    repo = random_repository(n_commits, branch_prob=0.18, merge_prob=0.1, seed=seed)
    merges = sum(1 for c in repo.commits if len(c.parents) == 2)
    print(f"  {repo.num_commits} commits, {merges} merges")

    graph = build_graph_from_repo(repo, name="sim-repo")
    stats = graph.stats()
    print(
        f"  version graph: {stats['nodes']:.0f} nodes / {stats['edges']:.0f} deltas; "
        f"avg version {stats['avg_version_storage']:.0f} B, "
        f"avg delta {stats['avg_delta_storage']:.0f} B"
    )

    full = graph.total_version_storage()
    minimal = min_storage_plan_tree(graph).total_storage
    print(f"\nStore-everything: {full:.0f} B; minimum possible: {minimal:.0f} B "
          f"({100 * minimal / full:.1f}% of naive)")

    budget = minimal * 1.5
    print(f"\n--- MSR: storage budget {budget:.0f} B (1.5x minimum) ---")
    greedy = lmg_all(graph, budget)
    print(
        f"LMG-All : storage {greedy.total_storage:.0f} B, "
        f"total retrieval {greedy.total_retrieval:.0f} B over {graph.num_versions} versions"
    )
    dp = dp_msr(graph, budget, ticks=96)
    print(
        f"DP-MSR  : storage {dp.score.storage:.0f} B, "
        f"total retrieval {dp.score.sum_retrieval:.0f} B"
    )
    best = dp.plan if dp.score.sum_retrieval <= greedy.total_retrieval else greedy.to_plan()
    mats = sorted(best.materialized)
    print(f"\nMaterialization schedule ({len(mats)} of {graph.num_versions} commits stored fully):")
    print("  commits:", ", ".join(map(str, mats)))

    sla = graph.max_retrieval_cost() * 3
    print(f"\n--- BMR: every checkout must replay <= {sla:.0f} B of deltas ---")
    bmr = dp_bmr_heuristic(graph, sla)
    score = evaluate_plan(graph, bmr.plan)
    print(
        f"DP-BMR  : storage {score.storage:.0f} B "
        f"({100 * score.storage / full:.1f}% of naive), "
        f"worst checkout {score.max_retrieval:.0f} B"
    )


if __name__ == "__main__":
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 60
    seed = int(sys.argv[2]) if len(sys.argv) > 2 else 7
    main(n, seed)
