#!/usr/bin/env python
"""Data-lake snapshot retention: explore the full storage/latency curve.

The paper's industry motivation: a product catalog in a data lake gets
a few records modified per refresh, producing a long chain of huge,
highly-similar versions.  Storing every snapshot is ruinous; storing
one and replaying months of deltas makes historical queries crawl.

This example models a year of nightly snapshots of a multi-GB catalog
(long chain + weekly branch-offs for reprocessing experiments), runs
**one** DP-MSR pass to obtain the entire storage/retrieval frontier,
prints it as a capacity-planning table, and materializes the plan for a
chosen budget.

Run:  python examples/datalake_snapshots.py
"""

import numpy as np

from repro.core import evaluate_plan
from repro.algorithms import min_storage_plan_tree
from repro.algorithms.dp_msr import DPMSRSolver
from repro.gen import CostModel, natural_graph

GB = 1024**3


def main() -> None:
    # ~365 nightly snapshots, ~4 GB each, nightly deltas ~40 MB,
    # occasional reprocessing branches.
    model = CostModel(
        version_mean=4 * GB,
        version_sigma=0.05,
        delta_mean=40 * GB / 1024,
        delta_sigma=0.5,
        retrieval_ratio=1.0,
    )
    graph = natural_graph(
        365, model=model, seed=2024, branch_prob=0.05, merge_prob=0.02, name="catalog"
    )
    naive = graph.total_version_storage()
    minimal = min_storage_plan_tree(graph).total_storage
    print(f"{graph.num_versions} snapshots; naive storage {naive / GB:.0f} GB, "
          f"minimum {minimal / GB:.1f} GB\n")

    solver = DPMSRSolver(graph, ticks=96, keep_tables=True)
    frontier = solver.frontier()

    print("Capacity-planning frontier (one DP run):")
    print(f"{'storage budget':>16} {'total retrieval':>16} {'avg / snapshot':>15}")
    budgets = np.geomspace(minimal * 1.02, naive * 0.5, 8)
    for b in budgets:
        r = frontier.best_retrieval_within(float(b))
        print(f"{b / GB:>13.1f} GB {r / GB:>13.2f} GB {r / graph.num_versions / GB * 1024:>11.1f} MB")

    budget = float(budgets[3])
    plan = solver.plan_for_budget(budget)
    score = evaluate_plan(graph, plan)
    mats = sorted(plan.materialized)
    print(f"\nChosen budget {budget / GB:.1f} GB -> materialize {len(mats)} snapshots:")
    print("  snapshot ids:", ", ".join(map(str, mats[:20])), "..." if len(mats) > 20 else "")
    print(f"  actual storage {score.storage / GB:.2f} GB, "
          f"worst snapshot rebuild {score.max_retrieval / GB * 1024:.0f} MB of deltas")


if __name__ == "__main__":
    main()
